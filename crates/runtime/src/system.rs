//! The dynamic optimization system loop.

use crate::stats::{RegionRecord, SystemStats};
use smarq::AllocScratch;
use smarq_guest::{BlockId, Interpreter, Program};
use smarq_ir::OpOrigin;
use smarq_ir::{form_superblock, unroll_superblock, FormationParams, IrOp, Superblock};
use smarq_opt::{
    optimize_superblock_traced, optimize_superblock_with_scratch, AliasBlacklist, OptConfig,
    OptTrace,
};
use smarq_vliw::{AnyAliasHw, MachineConfig, RegionOutcome, Simulator, VliwProgram, VliwState};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// System configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Machine model.
    pub machine: MachineConfig,
    /// Optimizer configuration (hardware scheme, speculation switches).
    pub opt: OptConfig,
    /// Execution count at which a block becomes hot.
    pub hot_threshold: u64,
    /// Region-formation parameters.
    pub formation: FormationParams,
    /// Loop unrolling factor applied to self-loop regions (1 disables;
    /// bounded by `formation.max_ops`). Larger regions exercise more alias
    /// registers — the paper's §2.2 scalability argument.
    pub unroll_factor: u32,
    /// Rollbacks after which a region is abandoned to interpretation
    /// (a backstop; blacklisting normally converges much earlier).
    pub max_rollbacks_per_region: u64,
    /// Verify-on-emit: statically verify every (re)translated region with
    /// `smarq_verify` before it enters the code cache. Findings accumulate
    /// in [`SystemStats`]; execution is never blocked (observation mode).
    /// Defaults to the `SMARQ_VERIFY` environment variable (non-empty,
    /// non-`0` value enables; read once per process).
    pub verify_translations: bool,
}

fn verify_from_env() -> bool {
    static FROM_ENV: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FROM_ENV
        .get_or_init(|| std::env::var_os("SMARQ_VERIFY").is_some_and(|v| !v.is_empty() && v != "0"))
}

impl Default for SystemConfig {
    fn default() -> Self {
        let machine = MachineConfig::default();
        SystemConfig {
            opt: OptConfig::smarq(machine.num_alias_regs),
            machine,
            hot_threshold: 50,
            formation: FormationParams {
                cold_threshold: 10,
                max_blocks: 16,
                max_ops: 512,
            },
            unroll_factor: 1,
            max_rollbacks_per_region: 64,
            verify_translations: verify_from_env(),
        }
    }
}

impl SystemConfig {
    /// Default system targeting the given optimizer configuration.
    pub fn with_opt(opt: OptConfig) -> Self {
        SystemConfig {
            opt,
            ..Self::default()
        }
    }
}

struct CachedRegion {
    vliw: VliwProgram,
    tag_origin: Vec<OpOrigin>,
    sb: Superblock,
    /// Guest instructions architecturally covered when leaving through
    /// each exit (approximated by the exit op's position in the trace).
    exit_instrs: Vec<u64>,
    rollbacks: u64,
}

/// Why [`DynOptSystem::run_to_completion`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The guest program halted.
    Halted,
    /// The guest-instruction budget ran out first.
    BudgetExhausted,
}

/// The dynamic binary optimization system (paper Figure 1).
pub struct DynOptSystem {
    program: Program,
    config: SystemConfig,
    interp: Interpreter,
    vstate: VliwState,
    sim: Simulator<AnyAliasHw>,
    cache: HashMap<BlockId, usize>,
    regions: Vec<CachedRegion>,
    abandoned: HashSet<BlockId>,
    blacklist: AliasBlacklist,
    stats: SystemStats,
    /// Allocator scratch recycled across every (re)translation.
    scratch: AllocScratch,
}

impl DynOptSystem {
    /// Creates a system for `program`.
    pub fn new(program: Program, config: SystemConfig) -> Self {
        let hw = AnyAliasHw::for_kind(config.opt.hw, config.opt.num_alias_regs);
        let sim = Simulator::new(config.machine, hw);
        let mut interp = Interpreter::new();
        interp.load_data(&program);
        DynOptSystem {
            program,
            config,
            interp,
            vstate: VliwState::new(),
            sim,
            cache: HashMap::new(),
            regions: Vec::new(),
            abandoned: HashSet::new(),
            blacklist: AliasBlacklist::new(),
            stats: SystemStats::default(),
            scratch: AllocScratch::new(),
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// The guest interpreter (architectural state lives here).
    pub fn interp(&self) -> &Interpreter {
        &self.interp
    }

    /// The alias blacklist accumulated from runtime exceptions.
    pub fn blacklist(&self) -> &AliasBlacklist {
        &self.blacklist
    }

    /// The superblocks of every region currently in the translation cache
    /// (in formation order). External oracles — the fuzzer's allocation
    /// validator and differential dependence checks — re-optimize exactly
    /// these regions instead of guessing what the system formed.
    pub fn formed_superblocks(&self) -> impl Iterator<Item = &Superblock> + '_ {
        self.regions.iter().map(|r| &r.sb)
    }

    /// Runs until the guest halts or roughly `budget` guest instructions
    /// have been retired.
    pub fn run_to_completion(&mut self, budget: u64) -> StopReason {
        let mut cur = self.program.entry();
        loop {
            if self.stats.guest_instrs() >= budget {
                self.sync_interp_stats();
                return StopReason::BudgetExhausted;
            }
            let next = self.step(cur);
            match next {
                Some(b) => cur = b,
                None => {
                    self.sync_interp_stats();
                    return StopReason::Halted;
                }
            }
        }
    }

    fn sync_interp_stats(&mut self) {
        self.stats.interp_instrs = self.interp.executed_instrs();
        self.stats.interp_cycles =
            self.stats.interp_instrs * self.config.machine.interp_cycles_per_instr;
    }

    /// Executes one step at block `cur`: a translated region if cached,
    /// otherwise one interpreted block (possibly triggering translation).
    fn step(&mut self, cur: BlockId) -> Option<BlockId> {
        if let Some(&idx) = self.cache.get(&cur) {
            return self.run_region(cur, idx);
        }
        // Interpret one block.
        let next = self.interp.step_block(&self.program, cur);
        self.sync_interp_stats();
        // Hot-block detection.
        if self.interp.profile().block_count(cur) >= self.config.hot_threshold
            && !self.cache.contains_key(&cur)
            && !self.abandoned.contains(&cur)
        {
            self.translate(cur);
        }
        next
    }

    fn translate(&mut self, entry: BlockId) {
        let t0 = Instant::now();
        let sb = form_superblock(
            &self.program,
            self.interp.profile(),
            entry,
            self.config.formation,
        );
        let (sb, _) = unroll_superblock(
            &sb,
            self.config.unroll_factor,
            self.config.formation.max_ops,
        );
        let (opt, trace) = if self.config.verify_translations {
            let (opt, trace) = optimize_superblock_traced(
                &sb,
                &self.config.opt,
                &self.config.machine,
                &self.blacklist,
                &mut self.scratch,
            );
            (opt, Some(trace))
        } else {
            let opt = optimize_superblock_with_scratch(
                &sb,
                &self.config.opt,
                &self.config.machine,
                &self.blacklist,
                &mut self.scratch,
            );
            (opt, None)
        };
        let ns = t0.elapsed().as_nanos() as u64;
        self.stats.translation_ns += ns;
        self.stats.scheduling_ns += opt.stats.sched_ns;
        // Verify after the overhead clock stops: the paper's Figure 18
        // overhead metric must not be polluted by an opt-in debug mode.
        if let Some(trace) = trace {
            self.verify_emitted(self.regions.len(), &trace);
        }

        let exit_instrs = exit_instr_counts(&sb);
        self.regions.push(CachedRegion {
            vliw: opt.vliw,
            tag_origin: opt.tag_origin,
            sb,
            exit_instrs,
            rollbacks: 0,
        });
        self.cache.insert(entry, self.regions.len() - 1);
        self.stats.regions_formed += 1;
        self.stats.per_region.push(RegionRecord {
            entry,
            opt: opt.stats,
            entries: 0,
            rollbacks: 0,
            retranslations: 0,
        });
    }

    fn retranslate(&mut self, idx: usize) {
        let t0 = Instant::now();
        let (opt, trace) = if self.config.verify_translations {
            let (opt, trace) = optimize_superblock_traced(
                &self.regions[idx].sb,
                &self.config.opt,
                &self.config.machine,
                &self.blacklist,
                &mut self.scratch,
            );
            (opt, Some(trace))
        } else {
            let opt = optimize_superblock_with_scratch(
                &self.regions[idx].sb,
                &self.config.opt,
                &self.config.machine,
                &self.blacklist,
                &mut self.scratch,
            );
            (opt, None)
        };
        let ns = t0.elapsed().as_nanos() as u64;
        self.stats.translation_ns += ns;
        self.stats.scheduling_ns += opt.stats.sched_ns;
        if let Some(trace) = trace {
            self.verify_emitted(idx, &trace);
        }
        self.regions[idx].vliw = opt.vliw;
        self.regions[idx].tag_origin = opt.tag_origin;
        self.stats.retranslations += 1;
        self.stats.per_region[idx].retranslations += 1;
        self.stats.per_region[idx].opt = opt.stats;
    }

    /// Statically verifies a freshly emitted translation (verify-on-emit
    /// mode) and folds the findings into [`SystemStats`]. Observation
    /// only: a bad region still enters the cache — callers inspect
    /// `verify_errors` to decide whether to trust the run.
    fn verify_emitted(&mut self, region: usize, trace: &OptTrace) {
        let diags = smarq_verify::verify_trace(region, trace, self.config.opt.num_alias_regs);
        self.stats.regions_verified += 1;
        for d in diags {
            if d.severity == smarq::Severity::Error {
                self.stats.verify_errors += 1;
            }
            if self.stats.verify_diagnostics.len() < SystemStats::VERIFY_DIAGNOSTIC_CAP {
                self.stats.verify_diagnostics.push(d.to_json());
            }
        }
    }

    fn run_region(&mut self, entry: BlockId, idx: usize) -> Option<BlockId> {
        self.vstate
            .load_guest(&self.interp.regs, &self.interp.fregs);
        let (outcome, rstats) = self
            .sim
            .run_region(
                &self.regions[idx].vliw,
                &mut self.vstate,
                &mut self.interp.mem,
            )
            .expect("translated region is well formed");
        self.stats.vliw_cycles += rstats.cycles;
        self.stats.region_mem_ops += rstats.mem_ops;
        self.stats.alias_entries_scanned += rstats.entries_scanned;
        self.stats.region_entries += 1;
        self.stats.per_region[idx].entries += 1;
        match outcome {
            RegionOutcome::Exited { exit_id } => {
                self.vstate
                    .store_guest(&mut self.interp.regs, &mut self.interp.fregs);
                let covered = self.regions[idx].exit_instrs[exit_id as usize];
                self.stats.region_guest_instrs += covered;
                self.regions[idx].vliw.exits[exit_id as usize]
                    .guest_block
                    .map(BlockId)
            }
            RegionOutcome::AliasException(v) => {
                // Rolled back: record the pair, re-optimize conservatively,
                // and make forward progress by interpreting one block.
                self.stats.rollbacks += 1;
                self.regions[idx].rollbacks += 1;
                self.stats.per_region[idx].rollbacks += 1;
                let a = self.regions[idx].tag_origin[v.checker_tag as usize];
                let b = self.regions[idx].tag_origin[v.producer_tag as usize];
                let fresh = self.blacklist.insert(a, b);
                if !fresh || self.regions[idx].rollbacks > self.config.max_rollbacks_per_region {
                    // Livelock backstop: abandon translation for this block.
                    self.cache.remove(&entry);
                    self.abandoned.insert(entry);
                } else {
                    self.retranslate(idx);
                }
                let next = self.interp.step_block(&self.program, entry);
                self.sync_interp_stats();
                next
            }
        }
    }
}

/// Guest instructions architecturally covered when leaving through each
/// exit: the number of non-exit ops before the exit, plus the terminators
/// represented by earlier exits.
fn exit_instr_counts(sb: &Superblock) -> Vec<u64> {
    let mut counts = vec![0u64; sb.exits.len()];
    let mut executed = 0u64;
    for op in &sb.ops {
        executed += 1;
        if let IrOp::Exit { exit_id, .. } = op {
            counts[*exit_id as usize] = executed;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::{AluOp, CmpOp, ProgramBuilder, Reg};

    /// Loop with an in-loop load/store to a fixed address, plus pointer
    /// accesses that never truly alias.
    fn accumulating_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), iters);
        b.iconst(entry, Reg(3), 0x1000); // accumulator
        b.iconst(entry, Reg(5), 0x2000); // array
        b.jump(entry, body);
        b.ld(body, Reg(4), Reg(3), 0);
        b.st(body, Reg(4), Reg(5), 0); // never aliases the accumulator
        b.ld(body, Reg(6), Reg(5), 8);
        b.alu(body, AluOp::Add, Reg(4), Reg(4), Reg(1));
        b.st(body, Reg(4), Reg(3), 0);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
        b.halt(done);
        b.finish(entry)
    }

    fn reference_state(p: &Program) -> smarq_guest::ArchState {
        let mut i = Interpreter::new();
        i.run(p, u64::MAX);
        i.arch_state()
    }

    #[test]
    fn optimized_execution_matches_interpretation() {
        let p = accumulating_loop(500);
        let expected = reference_state(&p);
        for opt in [
            OptConfig::smarq(64),
            OptConfig::smarq(16),
            OptConfig::smarq_no_store_reorder(64),
            OptConfig::alat(),
            OptConfig::no_alias_hw(),
        ] {
            let mut sys = DynOptSystem::new(p.clone(), SystemConfig::with_opt(opt.clone()));
            assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
            assert_eq!(
                sys.interp().arch_state(),
                expected,
                "arch state mismatch for {opt:?}"
            );
            assert!(sys.stats().regions_formed >= 1);
            assert!(sys.stats().vliw_cycles > 0);
        }
    }

    /// A loop whose load sits *behind* a store fed by a long FP chain:
    /// without alias hardware the load (and its multiply chain) serializes
    /// after the chain; with SMARQ it hoists to the top and overlaps.
    fn store_shadowed_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), iters);
        b.iconst(entry, Reg(3), 0x1000);
        b.iconst(entry, Reg(5), 0x2000);
        b.fconst(entry, smarq_guest::FReg(3), 1.0001);
        b.jump(entry, body);
        b.fld(body, smarq_guest::FReg(1), Reg(5), 0);
        b.fpu(
            body,
            smarq_guest::FpuOp::Div,
            smarq_guest::FReg(2),
            smarq_guest::FReg(1),
            smarq_guest::FReg(3),
        );
        b.fst(body, smarq_guest::FReg(2), Reg(5), 0);
        // The speculation target: a load after the store, may-alias by the
        // simple analysis (different base registers), never truly aliasing.
        b.ld(body, Reg(4), Reg(3), 0);
        b.alu(body, AluOp::Mul, Reg(6), Reg(4), Reg(4));
        b.alu(body, AluOp::Mul, Reg(6), Reg(6), Reg(6));
        b.st(body, Reg(6), Reg(3), 8);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
        b.halt(done);
        b.finish(entry)
    }

    #[test]
    fn speculation_beats_no_alias_hw_on_shadowed_loads() {
        let p = store_shadowed_loop(2000);
        let expected = reference_state(&p);
        let mut fast = DynOptSystem::new(p.clone(), SystemConfig::with_opt(OptConfig::smarq(64)));
        fast.run_to_completion(u64::MAX);
        let mut slow =
            DynOptSystem::new(p.clone(), SystemConfig::with_opt(OptConfig::no_alias_hw()));
        slow.run_to_completion(u64::MAX);
        assert_eq!(fast.interp().arch_state(), expected);
        assert_eq!(slow.interp().arch_state(), expected);
        assert_eq!(fast.stats().rollbacks, 0, "no true aliasing here");
        assert!(
            fast.stats().total_cycles() < slow.stats().total_cycles(),
            "SMARQ {} !< none {}",
            fast.stats().total_cycles(),
            slow.stats().total_cycles()
        );
    }

    /// Loop where the "unlikely" aliasing pair truly aliases: forces an
    /// alias exception, a rollback and a conservative re-translation.
    fn truly_aliasing_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), iters);
        b.iconst(entry, Reg(3), 0x1000);
        b.iconst(entry, Reg(5), 0x1000); // same address, different register!
        b.jump(entry, body);
        b.st(body, Reg(1), Reg(3), 0);
        b.ld(body, Reg(4), Reg(5), 0); // must see the store's value
        b.alu_imm(body, AluOp::Add, Reg(6), Reg(4), 0);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
        b.halt(done);
        b.finish(entry)
    }

    #[test]
    fn alias_exception_rolls_back_and_blacklists() {
        let p = truly_aliasing_loop(400);
        let expected = reference_state(&p);
        let mut sys = DynOptSystem::new(p, SystemConfig::with_opt(OptConfig::smarq(64)));
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected);
        assert!(sys.stats().rollbacks >= 1, "speculation must have faulted");
        assert!(sys.stats().retranslations >= 1);
        assert!(!sys.blacklist().is_empty());
        // After re-translation the region must run cleanly (no livelock).
        let last = sys.stats().per_region.last().unwrap();
        assert!(last.rollbacks < 5, "blacklisting must converge");
    }

    #[test]
    fn budget_stops_runs() {
        let p = accumulating_loop(1_000_000);
        let mut sys = DynOptSystem::new(p, SystemConfig::default());
        assert_eq!(sys.run_to_completion(50_000), StopReason::BudgetExhausted);
        assert!(sys.stats().guest_instrs() >= 50_000);
    }

    /// Two sequential hot loops plus a cold epilogue: both loops must get
    /// their own cached regions and the state must stay exact.
    fn two_phase_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let loop1 = b.block();
        let mid = b.block();
        let loop2 = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), iters);
        b.iconst(entry, Reg(3), 0x1000);
        b.iconst(entry, Reg(5), 0x2000);
        b.jump(entry, loop1);
        // Phase 1: accumulate into [r3].
        b.ld(loop1, Reg(4), Reg(3), 0);
        b.alu(loop1, AluOp::Add, Reg(4), Reg(4), Reg(1));
        b.st(loop1, Reg(4), Reg(3), 0);
        b.alu_imm(loop1, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(loop1, CmpOp::Lt, Reg(1), Reg(2), loop1, mid);
        // Reset the counter.
        b.iconst(mid, Reg(1), 0);
        b.jump(mid, loop2);
        // Phase 2: copy [r3] into [r5 + 8] with a may-alias pair.
        b.ld(loop2, Reg(6), Reg(3), 0);
        b.st(loop2, Reg(6), Reg(5), 8);
        b.ld(loop2, Reg(7), Reg(5), 16);
        b.alu_imm(loop2, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(loop2, CmpOp::Lt, Reg(1), Reg(2), loop2, done);
        b.halt(done);
        b.finish(entry)
    }

    #[test]
    fn multiple_hot_loops_each_get_regions() {
        let p = two_phase_program(400);
        let expected = reference_state(&p);
        let mut sys = DynOptSystem::new(p, SystemConfig::with_opt(OptConfig::smarq(64)));
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected);
        assert!(
            sys.stats().regions_formed >= 2,
            "both hot loops must be translated, got {}",
            sys.stats().regions_formed
        );
        let entries: Vec<_> = sys.stats().per_region.iter().map(|r| r.entry).collect();
        assert!(entries.contains(&BlockId(1)) && entries.contains(&BlockId(3)));
    }

    #[test]
    fn abandoned_regions_fall_back_to_interpretation() {
        // Force abandonment with a zero rollback budget on a program that
        // always faults: execution must still complete correctly.
        let p = truly_aliasing_loop(300);
        let expected = reference_state(&p);
        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
        cfg.max_rollbacks_per_region = 0;
        let mut sys = DynOptSystem::new(p, cfg);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected);
        assert!(sys.stats().rollbacks >= 1);
    }

    #[test]
    fn scan_energy_statistics_accumulate() {
        let p = store_shadowed_loop(400);
        let mut sys = DynOptSystem::new(p, SystemConfig::with_opt(OptConfig::smarq(64)));
        sys.run_to_completion(u64::MAX);
        let s = sys.stats();
        assert!(s.region_mem_ops > 0);
        assert!(s.alias_entries_scanned > 0, "checks must examine entries");
        assert!(s.scans_per_mem_op() > 0.0);
    }

    #[test]
    fn unrolled_regions_stay_bit_exact_and_grow() {
        let p = store_shadowed_loop(1200);
        let expected = reference_state(&p);
        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
        cfg.unroll_factor = 4;
        let mut sys = DynOptSystem::new(p.clone(), cfg);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected);
        let unrolled_mem = sys.stats().per_region[0].opt.mem_ops;

        let mut plain = DynOptSystem::new(p, SystemConfig::with_opt(OptConfig::smarq(64)));
        plain.run_to_completion(u64::MAX);
        let plain_mem = plain.stats().per_region[0].opt.mem_ops;
        assert_eq!(unrolled_mem, 4 * plain_mem, "region grew by the factor");
        // Fewer region entries, fewer checkpoints: at least as fast.
        assert!(sys.stats().region_entries < plain.stats().region_entries);
    }

    #[test]
    fn cold_programs_never_translate() {
        let p = accumulating_loop(5);
        let mut sys = DynOptSystem::new(p, SystemConfig::default());
        sys.run_to_completion(u64::MAX);
        assert_eq!(sys.stats().regions_formed, 0);
        assert_eq!(sys.stats().vliw_cycles, 0);
        assert!(sys.stats().interp_instrs > 0);
    }

    /// Verify-on-emit covers every translation AND retranslation, reports
    /// zero errors for the correct optimizer, and stays out of the way
    /// when off.
    #[test]
    fn verify_on_emit_covers_all_translations() {
        let p = accumulating_loop(400);
        let expected = reference_state(&p);
        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
        cfg.hot_threshold = 10;
        cfg.verify_translations = true;
        let mut sys = DynOptSystem::new(p.clone(), cfg);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected);
        let s = sys.stats();
        assert!(s.regions_verified > 0, "every emitted region is verified");
        assert_eq!(
            s.regions_verified,
            s.regions_formed + s.retranslations,
            "translations and retranslations both pass through the verifier"
        );
        assert_eq!(s.verify_errors, 0, "{:?}", s.verify_diagnostics);

        let mut off = DynOptSystem::new(p, SystemConfig::with_opt(OptConfig::smarq(64)));
        off.run_to_completion(u64::MAX);
        assert_eq!(off.stats().regions_verified, 0);
        assert!(off.stats().verify_diagnostics.is_empty());
    }
}
