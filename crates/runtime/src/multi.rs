//! Multi-guest schedulers: run N [`GuestContext`]s over one shared
//! [`TranslationHub`].
//!
//! Two drivers:
//!
//! * [`run_multi`] — the production shape: M std worker threads pull
//!   guests from a shared run queue, execute a dispatch-step slice, and
//!   requeue until every guest halts (or exhausts its budget). One guest
//!   runs on at most one thread at a time — each context's state needs no
//!   internal locking — while the hub serves translations to all of them.
//! * [`run_multi_interleaved`] — a single-threaded, seeded round-robin
//!   double with the same observable semantics. With `hub.workers = 0`
//!   (inline translation) the whole multi-guest run is deterministic, and
//!   the same seed replays the same schedule — the configuration the
//!   multiguest fuzz oracle drives, mirroring PR7's seeded
//!   race-interleaving harness.

use crate::context::GuestContext;
use crate::hub::TranslationHub;
use crate::region::xorshift64;
use crate::system::RunStatus;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Dispatch steps a guest runs before the scheduler rotates it out — a
/// balance between scheduling overhead and cross-guest publish latency
/// (hub invalidations are observed at slice boundaries at the latest).
pub const DEFAULT_SLICE_STEPS: u64 = 1024;

/// Runs every guest to halt (or to its `budget` of guest instructions)
/// on `threads` worker threads, `slice` dispatch steps at a time.
/// Returns the contexts in their original order for inspection.
pub fn run_multi(
    hub: &TranslationHub,
    guests: Vec<GuestContext>,
    threads: usize,
    budget: u64,
    slice: u64,
) -> Vec<GuestContext> {
    let slice = slice.max(1);
    if threads <= 1 {
        // Degenerate single-threaded run: plain round-robin, no locks.
        let mut guests = guests;
        loop {
            let mut live = false;
            for g in &mut guests {
                if g.halted() {
                    continue;
                }
                if g.run_bounded(hub, slice, budget) == RunStatus::Running {
                    live = true;
                }
            }
            if !live {
                return guests;
            }
        }
    }
    let n = guests.len();
    let slots: Vec<Mutex<Option<GuestContext>>> =
        guests.into_iter().map(|g| Mutex::new(Some(g))).collect();
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
    let remaining = AtomicUsize::new(n);
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                if remaining.load(Ordering::SeqCst) == 0 {
                    return;
                }
                let Some(i) = queue.lock().unwrap().pop_front() else {
                    // Every queued guest is being run by another worker;
                    // it may requeue, so spin politely until `remaining`
                    // hits zero.
                    thread::yield_now();
                    continue;
                };
                // Uncontended: a guest index is in the queue xor owned by
                // a worker, so this lock never blocks meaningfully.
                let mut slot = slots[i].lock().unwrap();
                let g = slot.as_mut().expect("queued guest is present");
                let status = g.run_bounded(hub, slice, budget);
                drop(slot);
                if status == RunStatus::Running {
                    queue.lock().unwrap().push_back(i);
                } else {
                    remaining.fetch_sub(1, Ordering::SeqCst);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("all workers exited"))
        .collect()
}

/// Single-threaded seeded round-robin: each turn picks a live guest and a
/// slice length from an xorshift64 stream, so the interleaving of guest
/// progress (and, with `hub.workers = 0`, of translations) is a pure
/// function of `seed`. Failures found under a seed replay from the seed
/// alone, like PR7's `run_interleaved` schedules.
pub fn run_multi_interleaved(
    hub: &TranslationHub,
    guests: &mut [GuestContext],
    seed: u64,
    budget: u64,
) {
    let mut state = seed | 1;
    let mut live: Vec<usize> = (0..guests.len()).filter(|&i| !guests[i].halted()).collect();
    while !live.is_empty() {
        let pick = (xorshift64(&mut state) % live.len() as u64) as usize;
        let i = live[pick];
        let steps = 1 + xorshift64(&mut state) % 13;
        if guests[i].run_bounded(hub, steps, budget) != RunStatus::Running {
            live.swap_remove(pick);
        }
    }
}
