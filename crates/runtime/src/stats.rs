//! End-to-end execution statistics.

use smarq_guest::BlockId;
use smarq_opt::OptStats;

/// Per-formed-region record (drives the paper's Figures 14, 17, 19).
#[derive(Clone, Debug)]
pub struct RegionRecord {
    /// Region entry block.
    pub entry: BlockId,
    /// Optimization statistics at last (re-)translation.
    pub opt: OptStats,
    /// Times this region was entered.
    pub entries: u64,
    /// Rollbacks suffered.
    pub rollbacks: u64,
    /// Re-translations after exceptions.
    pub retranslations: u32,
}

/// Whole-system statistics.
#[derive(Clone, Debug, Default)]
pub struct SystemStats {
    /// Guest instructions executed by the interpreter.
    pub interp_instrs: u64,
    /// Guest instructions covered by translated region executions
    /// (approximated per exit point).
    pub region_guest_instrs: u64,
    /// Simulated cycles spent in translated regions (incl. checkpoint and
    /// rollback penalties).
    pub vliw_cycles: u64,
    /// Simulated cycles attributed to interpretation
    /// (`interp_instrs × interp_cycles_per_instr`).
    pub interp_cycles: u64,
    /// Host nanoseconds spent translating/optimizing (the paper's
    /// Figure 18 overhead, measured around the optimizer like the paper's
    /// marker symbols).
    pub translation_ns: u64,
    /// Host nanoseconds of that spent inside scheduling + allocation.
    pub scheduling_ns: u64,
    /// Regions formed.
    pub regions_formed: usize,
    /// Total region entries.
    pub region_entries: u64,
    /// Translation-cache probes made by the dispatcher (per interpreted
    /// block, plus one per unresolved region exit). Chained dispatch
    /// drives this toward zero in steady state — followed links never
    /// consult the cache.
    pub dispatch_lookups: u64,
    /// Region→region transitions taken through a memoized chain link
    /// without re-entering the dispatcher.
    pub chain_follows: u64,
    /// Chain links invalidated because their target region was
    /// retranslated or abandoned.
    pub chain_unlinks: u64,
    /// Total rollbacks.
    pub rollbacks: u64,
    /// Total re-translations.
    pub retranslations: usize,
    /// Memory operations executed inside translated regions.
    pub region_mem_ops: u64,
    /// Alias entries examined by the detection hardware (energy proxy,
    /// paper §2.4).
    pub alias_entries_scanned: u64,
    /// Regions statically verified at emit time (verify-on-emit mode;
    /// see [`crate::SystemConfig::verify_translations`]).
    pub regions_verified: usize,
    /// Error-severity findings from verify-on-emit. Always 0 for a
    /// correct optimizer — any other value is a translation bug caught
    /// before the region ever ran.
    pub verify_errors: usize,
    /// JSON-serialized diagnostics from verify-on-emit, capped at
    /// [`Self::VERIFY_DIAGNOSTIC_CAP`] entries.
    pub verify_diagnostics: Vec<String>,
    /// Chain-boundary verifications run when the chained dispatcher
    /// memoized a region→region link (verify-on-emit mode).
    pub chain_checks: u64,
    /// Error-severity findings from those link-time chain checks. Always
    /// 0 for a correct optimizer/runtime — any other value is a chained
    /// hand-off bug caught before the link was ever followed.
    pub chain_errors: usize,
    /// Region entries executed on the fast-functional tier (these carry
    /// no `vliw_cycles` — the fast tier has no timing model).
    pub tier_fast_entries: u64,
    /// Functional-tier entries that were also replayed on the cycle
    /// simulator as tier-down samples.
    pub tier_samples: u64,
    /// Tier-down samples whose architectural result (outcome, register
    /// files, memory) differed from the fast tier's. Always 0 for a
    /// correct lowering — any other value is a fast-tier bug caught by
    /// the sampling oracle.
    pub tier_sample_mismatches: u64,
    /// Alias exceptions taken on the functional tier (each deoptimizes
    /// to the interpreter; also counted in `rollbacks`).
    pub tier_deopts: u64,
    /// Simulated cycles accumulated by tier-down samples. Kept out of
    /// `vliw_cycles`: sampled runs are oracle work, not modeled guest
    /// time.
    pub tier_sampled_cycles: u64,
    /// Translation jobs enqueued on the background service (async mode).
    pub async_enqueued: u64,
    /// Finished translations atomically published into the translation
    /// cache at a dispatch boundary.
    pub async_published: u64,
    /// Finished translations rejected at publish because the world moved
    /// while they were in flight: the entry was abandoned, its slot was
    /// already taken, or the blacklist generation advanced (those are
    /// resubmitted against the fresh snapshot).
    pub async_publish_conflicts: u64,
    /// Submissions dropped because the bounded job queue was full (the
    /// block stays hot, so the next dispatch retries).
    pub async_queue_full: u64,
    /// Peak number of jobs in flight at once.
    pub async_queue_peak: u64,
    /// Region entries under a blacklist generation older than the
    /// system's — executions of *stale* translations, the window async
    /// publication opens while a fresher translation is produced.
    pub async_stale_entries: u64,
    /// Host nanoseconds translation workers spent producing regions — off
    /// the guest's critical path (compare `translation_ns`, which is the
    /// inline path's on-critical-path cost and stays 0 in async mode).
    pub async_worker_ns: u64,
    /// Host nanoseconds of translation bookkeeping left *on* the critical
    /// path in async mode: job submission plus atomic publication.
    pub async_stall_ns: u64,
    /// Per-region records.
    pub per_region: Vec<RegionRecord>,
}

impl SystemStats {
    /// Upper bound on retained verify-on-emit diagnostics (the counters
    /// keep counting past it).
    pub const VERIFY_DIAGNOSTIC_CAP: usize = 64;

    /// Total simulated execution cycles (interpretation + regions).
    pub fn total_cycles(&self) -> u64 {
        self.vliw_cycles + self.interp_cycles
    }

    /// Total guest instructions retired (interpreted + in regions).
    pub fn guest_instrs(&self) -> u64 {
        self.interp_instrs + self.region_guest_instrs
    }

    /// Fraction of execution time spent in the optimizer, modeling the
    /// simulated core at 1 GHz (1 cycle = 1 ns) — the paper's Figure 18
    /// metric.
    pub fn optimization_overhead(&self) -> f64 {
        let exec_ns = self.total_cycles() as f64;
        let opt_ns = self.translation_ns as f64;
        if exec_ns + opt_ns == 0.0 {
            0.0
        } else {
            opt_ns / (exec_ns + opt_ns)
        }
    }

    /// Fraction of execution time spent in scheduling + allocation.
    pub fn scheduling_overhead(&self) -> f64 {
        let exec_ns = self.total_cycles() as f64;
        let opt_ns = self.translation_ns as f64;
        if exec_ns + opt_ns == 0.0 {
            0.0
        } else {
            self.scheduling_ns as f64 / (exec_ns + opt_ns)
        }
    }

    /// Alias entries examined per executed memory operation — the energy
    /// proxy the paper uses to argue against check-everything schemes.
    pub fn scans_per_mem_op(&self) -> f64 {
        if self.region_mem_ops == 0 {
            0.0
        } else {
            self.alias_entries_scanned as f64 / self.region_mem_ops as f64
        }
    }

    /// Translation-stall cycles the async pipeline removed from the
    /// guest's critical path, modeling the simulated core at 1 GHz
    /// (1 cycle = 1 ns, like [`Self::optimization_overhead`]): worker
    /// time that would have stalled the guest inline, minus the
    /// submit/publish bookkeeping the async path still pays.
    pub fn stall_cycles_avoided(&self) -> u64 {
        self.async_worker_ns.saturating_sub(self.async_stall_ns)
    }

    /// Average memory operations per formed superblock (Figure 14).
    pub fn avg_mem_ops_per_region(&self) -> f64 {
        if self.per_region.is_empty() {
            return 0.0;
        }
        self.per_region
            .iter()
            .map(|r| r.opt.mem_ops as f64)
            .sum::<f64>()
            / self.per_region.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DynOptSystem, StopReason, SystemConfig};
    use smarq_guest::{AluOp, CmpOp, Program, ProgramBuilder, Reg};
    use smarq_opt::OptConfig;

    #[test]
    fn totals_and_ratios() {
        let mut s = SystemStats::default();
        assert_eq!(s.optimization_overhead(), 0.0);
        s.vliw_cycles = 900;
        s.interp_cycles = 100;
        s.interp_instrs = 5;
        s.region_guest_instrs = 95;
        s.translation_ns = 1000;
        s.scheduling_ns = 400;
        assert_eq!(s.total_cycles(), 1000);
        assert_eq!(s.guest_instrs(), 100);
        assert!((s.optimization_overhead() - 0.5).abs() < 1e-12);
        assert!((s.scheduling_overhead() - 0.2).abs() < 1e-12);
    }

    /// Counted loop whose load sits behind a store to a different (but
    /// not provably different) address: the optimizer hoists the load and
    /// the store checks it, so regions form, run, and scan alias entries.
    fn counted_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), iters);
        b.iconst(entry, Reg(3), 0x1000);
        b.iconst(entry, Reg(5), 0x2000);
        b.jump(entry, body);
        b.st(body, Reg(1), Reg(5), 0);
        b.ld(body, Reg(4), Reg(3), 0); // never truly aliases the store
        b.alu(body, AluOp::Add, Reg(4), Reg(4), Reg(1));
        b.st(body, Reg(4), Reg(3), 0);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
        b.halt(done);
        b.finish(entry)
    }

    /// Store and load of the same address through different registers: the
    /// speculative schedule must fault, roll back and re-translate.
    fn aliasing_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), iters);
        b.iconst(entry, Reg(3), 0x1000);
        b.iconst(entry, Reg(5), 0x1000);
        b.jump(entry, body);
        b.st(body, Reg(1), Reg(3), 0);
        b.ld(body, Reg(4), Reg(5), 0);
        b.alu_imm(body, AluOp::Add, Reg(6), Reg(4), 0);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
        b.halt(done);
        b.finish(entry)
    }

    fn run(p: Program, cfg: SystemConfig) -> SystemStats {
        let mut sys = DynOptSystem::new(p, cfg);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        sys.stats().clone()
    }

    /// Per-region records must sum to the global counters, and the
    /// hot-threshold knob must shift work between the interpreter and the
    /// translated regions.
    #[test]
    fn counters_account_for_promotion_and_entries() {
        let hot = SystemConfig {
            hot_threshold: 10,
            ..SystemConfig::default()
        };
        let s = run(counted_loop(200), hot);

        assert_eq!(s.regions_formed, s.per_region.len());
        assert!(s.regions_formed >= 1);
        assert!(s.interp_instrs > 0, "warm-up iterations are interpreted");
        assert!(s.region_entries > 0);
        assert!(s.region_guest_instrs > 0);
        assert_eq!(
            s.region_entries,
            s.per_region.iter().map(|r| r.entries).sum::<u64>()
        );
        assert_eq!(s.total_cycles(), s.vliw_cycles + s.interp_cycles);
        assert!(s.guest_instrs() >= s.interp_instrs);
        assert!(s.translation_ns >= s.scheduling_ns);
        assert!(s.avg_mem_ops_per_region() > 0.0);

        // A colder threshold keeps more iterations in the interpreter.
        let cold = SystemConfig {
            hot_threshold: 100,
            ..SystemConfig::default()
        };
        let c = run(counted_loop(200), cold);
        assert!(c.interp_instrs > s.interp_instrs);
        assert!(c.region_entries < s.region_entries);
    }

    /// Rollback and re-translation events must be mirrored exactly between
    /// the global counters and the per-region records.
    #[test]
    fn rollback_counters_mirror_per_region_records() {
        let cfg = SystemConfig {
            hot_threshold: 10,
            ..SystemConfig::default()
        };
        let s = run(aliasing_loop(300), cfg);

        assert!(s.rollbacks >= 1, "true aliasing must fault at least once");
        assert!(s.retranslations >= 1);
        assert_eq!(
            s.rollbacks,
            s.per_region.iter().map(|r| r.rollbacks).sum::<u64>()
        );
        assert_eq!(
            s.retranslations,
            s.per_region
                .iter()
                .map(|r| r.retranslations as usize)
                .sum::<usize>()
        );
        // A region cannot roll back more often than it was entered.
        for r in &s.per_region {
            assert!(r.rollbacks <= r.entries, "{r:?}");
        }
    }

    /// Batching `sync_interp_stats` off the per-block dispatch path must
    /// not change any guest-instruction accounting: the naive (per-block
    /// sync) and chained (boundary sync) dispatchers report identical
    /// totals, and the synced counter always equals the interpreter's own
    /// counter at every observable stop point.
    #[test]
    fn batched_stat_sync_preserves_guest_instr_totals() {
        use crate::DispatchMode;
        for p in [counted_loop(300), aliasing_loop(300)] {
            let mk = |mode: DispatchMode| {
                let mut cfg = SystemConfig {
                    hot_threshold: 10,
                    ..SystemConfig::default()
                };
                cfg.dispatch = mode;
                let mut sys = DynOptSystem::new(p.clone(), cfg);
                assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
                sys
            };
            let naive = mk(DispatchMode::Naive);
            let chained = mk(DispatchMode::Chained);
            assert_eq!(
                naive.stats().guest_instrs(),
                chained.stats().guest_instrs(),
                "total guest instructions are dispatch-invariant"
            );
            assert_eq!(
                naive.stats().interp_instrs,
                chained.stats().interp_instrs,
                "interpreted share is dispatch-invariant"
            );
            for sys in [&naive, &chained] {
                assert_eq!(
                    sys.stats().interp_instrs,
                    sys.interp().executed_instrs(),
                    "the synced counter matches the interpreter at stop"
                );
            }
        }

        // Budget-exhausted stops are boundary syncs too.
        let mut cfg = SystemConfig {
            hot_threshold: 10,
            ..SystemConfig::default()
        };
        cfg.dispatch = DispatchMode::Chained;
        let mut sys = DynOptSystem::new(counted_loop(1_000_000), cfg);
        assert_eq!(sys.run_to_completion(20_000), StopReason::BudgetExhausted);
        assert!(sys.stats().guest_instrs() >= 20_000);
        assert_eq!(sys.stats().interp_instrs, sys.interp().executed_instrs());
    }

    /// The energy proxy separates the schemes: SMARQ's checks scan alias
    /// entries, while the no-alias-hardware baseline never scans any.
    #[test]
    fn alias_scan_proxy_distinguishes_schemes() {
        let cfg = SystemConfig {
            hot_threshold: 10,
            ..SystemConfig::with_opt(OptConfig::smarq(64))
        };
        let smarq = run(counted_loop(200), cfg);
        assert!(smarq.region_mem_ops > 0);
        assert!(smarq.alias_entries_scanned > 0);
        assert!(smarq.scans_per_mem_op() > 0.0);

        let cfg = SystemConfig {
            hot_threshold: 10,
            ..SystemConfig::with_opt(OptConfig::no_alias_hw())
        };
        let none = run(counted_loop(200), cfg);
        assert!(none.region_mem_ops > 0, "regions still form and run");
        assert_eq!(none.alias_entries_scanned, 0);
        assert_eq!(none.scans_per_mem_op(), 0.0);
    }
}
