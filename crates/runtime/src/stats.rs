//! End-to-end execution statistics.

use smarq_guest::BlockId;
use smarq_opt::OptStats;

/// Per-formed-region record (drives the paper's Figures 14, 17, 19).
#[derive(Clone, Debug)]
pub struct RegionRecord {
    /// Region entry block.
    pub entry: BlockId,
    /// Optimization statistics at last (re-)translation.
    pub opt: OptStats,
    /// Times this region was entered.
    pub entries: u64,
    /// Rollbacks suffered.
    pub rollbacks: u64,
    /// Re-translations after exceptions.
    pub retranslations: u32,
}

/// Whole-system statistics.
#[derive(Clone, Debug, Default)]
pub struct SystemStats {
    /// Guest instructions executed by the interpreter.
    pub interp_instrs: u64,
    /// Guest instructions covered by translated region executions
    /// (approximated per exit point).
    pub region_guest_instrs: u64,
    /// Simulated cycles spent in translated regions (incl. checkpoint and
    /// rollback penalties).
    pub vliw_cycles: u64,
    /// Simulated cycles attributed to interpretation
    /// (`interp_instrs × interp_cycles_per_instr`).
    pub interp_cycles: u64,
    /// Host nanoseconds spent translating/optimizing (the paper's
    /// Figure 18 overhead, measured around the optimizer like the paper's
    /// marker symbols).
    pub translation_ns: u64,
    /// Host nanoseconds of that spent inside scheduling + allocation.
    pub scheduling_ns: u64,
    /// Regions formed.
    pub regions_formed: usize,
    /// Total region entries.
    pub region_entries: u64,
    /// Total rollbacks.
    pub rollbacks: u64,
    /// Total re-translations.
    pub retranslations: usize,
    /// Memory operations executed inside translated regions.
    pub region_mem_ops: u64,
    /// Alias entries examined by the detection hardware (energy proxy,
    /// paper §2.4).
    pub alias_entries_scanned: u64,
    /// Per-region records.
    pub per_region: Vec<RegionRecord>,
}

impl SystemStats {
    /// Total simulated execution cycles (interpretation + regions).
    pub fn total_cycles(&self) -> u64 {
        self.vliw_cycles + self.interp_cycles
    }

    /// Total guest instructions retired (interpreted + in regions).
    pub fn guest_instrs(&self) -> u64 {
        self.interp_instrs + self.region_guest_instrs
    }

    /// Fraction of execution time spent in the optimizer, modeling the
    /// simulated core at 1 GHz (1 cycle = 1 ns) — the paper's Figure 18
    /// metric.
    pub fn optimization_overhead(&self) -> f64 {
        let exec_ns = self.total_cycles() as f64;
        let opt_ns = self.translation_ns as f64;
        if exec_ns + opt_ns == 0.0 {
            0.0
        } else {
            opt_ns / (exec_ns + opt_ns)
        }
    }

    /// Fraction of execution time spent in scheduling + allocation.
    pub fn scheduling_overhead(&self) -> f64 {
        let exec_ns = self.total_cycles() as f64;
        let opt_ns = self.translation_ns as f64;
        if exec_ns + opt_ns == 0.0 {
            0.0
        } else {
            self.scheduling_ns as f64 / (exec_ns + opt_ns)
        }
    }

    /// Alias entries examined per executed memory operation — the energy
    /// proxy the paper uses to argue against check-everything schemes.
    pub fn scans_per_mem_op(&self) -> f64 {
        if self.region_mem_ops == 0 {
            0.0
        } else {
            self.alias_entries_scanned as f64 / self.region_mem_ops as f64
        }
    }

    /// Average memory operations per formed superblock (Figure 14).
    pub fn avg_mem_ops_per_region(&self) -> f64 {
        if self.per_region.is_empty() {
            return 0.0;
        }
        self.per_region
            .iter()
            .map(|r| r.opt.mem_ops as f64)
            .sum::<f64>()
            / self.per_region.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratios() {
        let mut s = SystemStats::default();
        assert_eq!(s.optimization_overhead(), 0.0);
        s.vliw_cycles = 900;
        s.interp_cycles = 100;
        s.interp_instrs = 5;
        s.region_guest_instrs = 95;
        s.translation_ns = 1000;
        s.scheduling_ns = 400;
        assert_eq!(s.total_cycles(), 1000);
        assert_eq!(s.guest_instrs(), 100);
        assert!((s.optimization_overhead() - 0.5).abs() < 1e-12);
        assert!((s.scheduling_overhead() - 0.2).abs() < 1e-12);
    }
}
