//! Asynchronous background translation pipeline (ROADMAP open item 3).
//!
//! The paper's §7 overhead argument only holds if region formation,
//! optimization and verification stay off the guest's critical path. This
//! module provides the machinery: a [`TranslationJob`] captures everything
//! a translation needs (program, profile snapshot, optimizer config,
//! blacklist snapshot), [`run_translation_job`] executes one job to a
//! [`FinishedTranslation`], and a [`TranslationExecutor`] decides *where*
//! and *when* jobs run:
//!
//! * [`ThreadedExecutor`] — the production shape: a bounded job queue
//!   drained by a pool of worker threads, results returned over a channel
//!   and atomically published by the execution thread at dispatch
//!   boundaries.
//! * [`StepExecutor`] — a single-threaded, step-controlled double for the
//!   deterministic race-interleaving harness: jobs advance through
//!   *queued → computed → released* only when a test driver (or a seeded
//!   schedule) says so, which lets tests enumerate and replay
//!   publish-vs-execute-vs-unlink interleavings exactly.
//!
//! The execution thread never blocks on a worker: until a finished region
//! is published, the guest keeps interpreting (or keeps running regions
//! translated under an older blacklist — "stale" translations, counted in
//! [`crate::SystemStats::async_stale_entries`]).

use smarq::range::RegState;
use smarq::{AllocScratch, Diagnostic};
use smarq_guest::{BlockId, Profile, Program};
use smarq_ir::{form_superblock, unroll_superblock, FormationParams, Superblock};
use smarq_opt::fastcomp::{self, FastProgram};
use smarq_opt::{
    optimize_superblock_traced_ranged, AliasBlacklist, OptConfig, OptTrace, Optimized,
};
use smarq_vliw::MachineConfig;
use std::collections::VecDeque;
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// What a translation job produces when published.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobKind {
    /// First translation of a hot block: on publish, a brand-new region
    /// enters the translation cache.
    Translate {
        /// The hot entry block being translated.
        entry: BlockId,
    },
    /// Conservative re-translation of an existing (unpublished) region
    /// slot after an alias-exception deopt.
    Retranslate {
        /// The region slot the result is re-published into.
        region: u32,
        /// That slot's entry block.
        entry: BlockId,
    },
}

impl JobKind {
    /// The guest entry block this job is keyed by (both kinds have one).
    pub fn entry(&self) -> BlockId {
        match *self {
            JobKind::Translate { entry } | JobKind::Retranslate { entry, .. } => entry,
        }
    }
}

/// Where the job's superblock comes from.
#[derive(Clone, Debug)]
pub enum JobInput {
    /// Form it on the worker from a profile snapshot (first translations:
    /// formation itself moves off the critical path).
    Form {
        /// Execution profile snapshotted at the hot trigger.
        profile: Profile,
    },
    /// Already formed (retranslations reuse the region's superblock;
    /// stale-generation resubmits reuse the one the first attempt formed).
    Ready(Box<Superblock>),
}

/// A self-contained translation request: everything the worker needs,
/// snapshotted at submit time so the execution thread shares nothing
/// mutable with the workers.
#[derive(Clone, Debug)]
pub struct TranslationJob {
    /// Install a new region or refresh an existing slot.
    pub kind: JobKind,
    /// Superblock source (profile snapshot or pre-formed).
    pub input: JobInput,
    /// The guest program (shared, immutable).
    pub program: Arc<Program>,
    /// Region-formation parameters.
    pub formation: FormationParams,
    /// Self-loop unrolling factor.
    pub unroll_factor: u32,
    /// Optimizer configuration.
    pub opt: OptConfig,
    /// Machine model (scheduling shape).
    pub machine: MachineConfig,
    /// Alias-blacklist snapshot the optimization runs against.
    pub blacklist: AliasBlacklist,
    /// Generation counter of that snapshot; publish rejects results whose
    /// generation is older than the system's (the blacklist grew while
    /// the job was in flight) and resubmits with a fresh snapshot.
    pub blacklist_gen: u64,
    /// Statically verify the emitted region on the worker.
    pub verify: bool,
    /// Also lower the region for the fast-functional tier.
    pub compile_fast: bool,
    /// Abstract entry register state from the whole-program range
    /// analysis (`None` = assume ⊤), for the range-precise nospec taint.
    pub entry_state: Option<RegState>,
}

/// A finished translation, ready to be atomically published by the
/// execution thread.
#[derive(Debug)]
pub struct FinishedTranslation {
    /// The request this answers.
    pub kind: JobKind,
    /// The formed (or reused) superblock.
    pub sb: Superblock,
    /// The optimized region.
    pub opt: Optimized,
    /// Verify-on-emit findings (empty when verification was off). In
    /// async mode diagnostics are labeled by the entry block index — the
    /// worker cannot know the final region index.
    pub diags: Vec<Diagnostic>,
    /// Whether the worker ran static verification.
    pub verified: bool,
    /// The optimizer's trace, retained when verification ran (the
    /// publisher keeps it for link-time chain checks).
    pub trace: Option<OptTrace>,
    /// The entry state the optimization assumed (echoed from the job).
    pub entry_state: Option<RegState>,
    /// Fast-functional lowering (when requested).
    pub fast: Option<FastProgram>,
    /// Blacklist generation the job optimized against.
    pub blacklist_gen: u64,
    /// Host nanoseconds the worker spent on this job — off the guest's
    /// critical path by construction.
    pub worker_ns: u64,
}

/// Runs one translation job to completion. Pure with respect to the
/// system: everything it needs rides in the job, everything it produces
/// rides in the result.
pub fn run_translation_job(job: TranslationJob, scratch: &mut AllocScratch) -> FinishedTranslation {
    let t0 = Instant::now();
    let sb = match job.input {
        JobInput::Ready(sb) => *sb,
        JobInput::Form { profile } => {
            let sb = form_superblock(&job.program, &profile, job.kind.entry(), job.formation);
            let (sb, _) = unroll_superblock(&sb, job.unroll_factor, job.formation.max_ops);
            sb
        }
    };
    let (opt, trace) = optimize_superblock_traced_ranged(
        &sb,
        &job.opt,
        &job.machine,
        &job.blacklist,
        scratch,
        job.entry_state.as_ref(),
    );
    let diags = if job.verify {
        smarq_verify::verify_trace(job.kind.entry().index(), &trace, job.opt.num_alias_regs)
    } else {
        Vec::new()
    };
    let trace = job.verify.then_some(trace);
    let fast = job
        .compile_fast
        .then(|| fastcomp::compile(&opt.vliw).expect("translated region is well formed"));
    FinishedTranslation {
        kind: job.kind,
        sb,
        opt,
        diags,
        verified: job.verify,
        trace,
        entry_state: job.entry_state,
        fast,
        blacklist_gen: job.blacklist_gen,
        worker_ns: t0.elapsed().as_nanos() as u64,
    }
}

/// Where and when translation jobs run. Implementations must be `Send`
/// so the owning system can move across threads (the evaluation harness
/// runs systems in parallel).
pub trait TranslationExecutor: Send {
    /// Enqueues a job. Returns `false` when the bounded queue is full —
    /// the job is dropped and the caller retries naturally (the block
    /// stays hot, the next dispatch re-triggers).
    fn submit(&mut self, job: TranslationJob) -> bool;
    /// A finished translation, if one is ready to publish. Never blocks.
    fn try_recv(&mut self) -> Option<FinishedTranslation>;
    /// Blocks until a finished translation is available; `None` when no
    /// job is outstanding (used to drain the pipeline at shutdown).
    fn recv_blocking(&mut self) -> Option<FinishedTranslation>;
    /// Jobs submitted but not yet received.
    fn outstanding(&self) -> usize;
    /// Step hook: run one queued job to the *computed* stage. Returns
    /// `false` when the executor does not expose step control (threaded)
    /// or nothing is queued.
    fn compute_one(&mut self) -> bool {
        false
    }
    /// Step hook: move one computed result to the *released* stage where
    /// `try_recv` can observe it. Returns `false` when unsupported or
    /// nothing is computed.
    fn release_one(&mut self) -> bool {
        false
    }
}

/// The production executor: a bounded job channel drained by a pool of
/// worker threads. Results flow back over an unbounded channel and are
/// published by the execution thread at its next dispatch boundary.
pub struct ThreadedExecutor {
    tx: Option<mpsc::SyncSender<TranslationJob>>,
    rx: mpsc::Receiver<FinishedTranslation>,
    outstanding: usize,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadedExecutor {
    /// Spawns `workers` threads (min 1) behind a job queue bounded at
    /// `queue_depth` (min 1).
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let (jtx, jrx) = mpsc::sync_channel::<TranslationJob>(queue_depth.max(1));
        let (rtx, rrx) = mpsc::channel::<FinishedTranslation>();
        let jrx = Arc::new(Mutex::new(jrx));
        let handles = (0..workers.max(1))
            .map(|_| {
                let jrx = Arc::clone(&jrx);
                let rtx = rtx.clone();
                thread::spawn(move || {
                    // Each worker recycles its own allocator scratch, like
                    // the inline path recycles the system's.
                    let mut scratch = AllocScratch::new();
                    loop {
                        // Hold the lock only for the dequeue, not the job.
                        let job = match jrx.lock() {
                            Ok(rx) => rx.recv(),
                            Err(_) => break,
                        };
                        let Ok(job) = job else { break };
                        if rtx.send(run_translation_job(job, &mut scratch)).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        ThreadedExecutor {
            tx: Some(jtx),
            rx: rrx,
            outstanding: 0,
            workers: handles,
        }
    }
}

impl TranslationExecutor for ThreadedExecutor {
    fn submit(&mut self, job: TranslationJob) -> bool {
        let tx = self.tx.as_ref().expect("executor not shut down");
        match tx.try_send(job) {
            Ok(()) => {
                self.outstanding += 1;
                true
            }
            Err(TrySendError::Full(_)) => false,
            Err(TrySendError::Disconnected(_)) => {
                unreachable!("workers outlive the executor")
            }
        }
    }

    fn try_recv(&mut self) -> Option<FinishedTranslation> {
        let fin = self.rx.try_recv().ok()?;
        self.outstanding -= 1;
        Some(fin)
    }

    fn recv_blocking(&mut self) -> Option<FinishedTranslation> {
        if self.outstanding == 0 {
            return None;
        }
        let fin = self.rx.recv().ok()?;
        self.outstanding -= 1;
        Some(fin)
    }

    fn outstanding(&self) -> usize {
        self.outstanding
    }
}

impl Drop for ThreadedExecutor {
    fn drop(&mut self) {
        // Closing the job channel ends every worker's recv loop.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Single-threaded, step-controlled executor for deterministic schedule
/// exploration. A job moves through three explicit stages —
/// **queued** (submitted, not started), **computed** (translation done,
/// result not yet visible) and **released** (visible to `try_recv`) —
/// and only advances when [`TranslationExecutor::compute_one`] /
/// [`TranslationExecutor::release_one`] are called. A test driver (or the
/// seeded schedule in `DynOptSystem::run_interleaved`) therefore controls
/// exactly when a finished translation becomes publishable, relative to
/// guest execution, deopts and unlinks.
pub struct StepExecutor {
    capacity: usize,
    /// Auto mode: `try_recv` advances one job through both stages itself,
    /// giving a deterministic "translation finishes at the next dispatch
    /// boundary" executor with no manual driving (used for
    /// `translate_workers = 0`).
    auto: bool,
    queued: VecDeque<TranslationJob>,
    computed: VecDeque<FinishedTranslation>,
    released: VecDeque<FinishedTranslation>,
    scratch: AllocScratch,
}

impl StepExecutor {
    /// Manual stepping: nothing advances until the driver says so.
    pub fn manual(capacity: usize) -> Self {
        Self::with_mode(capacity, false)
    }

    /// Auto stepping: each `try_recv` completes at most one queued job,
    /// so translations deterministically land one dispatch boundary after
    /// submission.
    pub fn auto(capacity: usize) -> Self {
        Self::with_mode(capacity, true)
    }

    fn with_mode(capacity: usize, auto: bool) -> Self {
        StepExecutor {
            capacity: capacity.max(1),
            auto,
            queued: VecDeque::new(),
            computed: VecDeque::new(),
            released: VecDeque::new(),
            scratch: AllocScratch::new(),
        }
    }
}

impl TranslationExecutor for StepExecutor {
    fn submit(&mut self, job: TranslationJob) -> bool {
        // The bound models the threaded job channel: it limits *waiting*
        // jobs, not finished results.
        if self.queued.len() >= self.capacity {
            return false;
        }
        self.queued.push_back(job);
        true
    }

    fn try_recv(&mut self) -> Option<FinishedTranslation> {
        if self.auto {
            if self.released.is_empty() && self.computed.is_empty() {
                self.compute_one();
            }
            if self.released.is_empty() {
                self.release_one();
            }
        }
        self.released.pop_front()
    }

    fn recv_blocking(&mut self) -> Option<FinishedTranslation> {
        loop {
            if let Some(fin) = self.released.pop_front() {
                return Some(fin);
            }
            if !self.release_one() && !self.compute_one() {
                return None;
            }
        }
    }

    fn outstanding(&self) -> usize {
        self.queued.len() + self.computed.len() + self.released.len()
    }

    fn compute_one(&mut self) -> bool {
        let Some(job) = self.queued.pop_front() else {
            return false;
        };
        let fin = run_translation_job(job, &mut self.scratch);
        self.computed.push_back(fin);
        true
    }

    fn release_one(&mut self) -> bool {
        let Some(fin) = self.computed.pop_front() else {
            return false;
        };
        self.released.push_back(fin);
        true
    }
}

/// The system-facing wrapper around an executor: pending-job bookkeeping
/// (at most one in-flight job per guest entry block) on top of whichever
/// executor is installed.
pub struct TranslationService {
    exec: Box<dyn TranslationExecutor>,
    /// `pending[block.index()]`: a job keyed by this entry block is in
    /// flight (covers both translations and retranslations; cleared when
    /// the result is taken for publish).
    pending: Vec<bool>,
}

impl TranslationService {
    /// Wraps `exec` for a program with `num_blocks` guest blocks.
    pub fn new(exec: Box<dyn TranslationExecutor>, num_blocks: usize) -> Self {
        TranslationService {
            exec,
            pending: vec![false; num_blocks],
        }
    }

    /// Whether a job keyed by `entry` is already in flight.
    pub fn is_pending(&self, entry: BlockId) -> bool {
        self.pending[entry.index()]
    }

    /// Enqueues a job; returns `false` (job dropped) when the bounded
    /// queue is full.
    pub fn submit(&mut self, job: TranslationJob) -> bool {
        let entry = job.kind.entry();
        if self.exec.submit(job) {
            self.pending[entry.index()] = true;
            true
        } else {
            false
        }
    }

    /// Takes one finished translation, if ready, clearing its pending
    /// mark. Never blocks.
    pub fn take(&mut self) -> Option<FinishedTranslation> {
        let fin = self.exec.try_recv()?;
        self.pending[fin.kind.entry().index()] = false;
        Some(fin)
    }

    /// Blocking variant of [`Self::take`]; `None` once nothing is
    /// outstanding.
    pub fn take_blocking(&mut self) -> Option<FinishedTranslation> {
        let fin = self.exec.recv_blocking()?;
        self.pending[fin.kind.entry().index()] = false;
        Some(fin)
    }

    /// Jobs in flight (queued, computed or released, not yet taken).
    pub fn outstanding(&self) -> usize {
        self.exec.outstanding()
    }

    /// Forwards [`TranslationExecutor::compute_one`].
    pub fn compute_one(&mut self) -> bool {
        self.exec.compute_one()
    }

    /// Forwards [`TranslationExecutor::release_one`].
    pub fn release_one(&mut self) -> bool {
        self.exec.release_one()
    }
}
