//! The shared translation hub: one thread-safe translation service for
//! many concurrently executing guests (ROADMAP open item 1).
//!
//! [`crate::DynOptSystem`] owns exactly one guest; N tenants through it
//! mean N redundant translations of the same hot guest code. The
//! [`TranslationHub`] factors the shareable half out:
//!
//! * a **sharded flat translation cache** keyed by
//!   ([`hash_program`], entry block) — lookups take one shard mutex,
//!   and published entries are immutable [`RegionCode`]s behind `Arc`s,
//!   so guests execute shared code without further synchronization;
//! * the **alias blacklist with a generation counter** — one speculation
//!   failure anywhere teaches every guest, exactly the paper's argument
//!   that the software-managed queue makes runtime feedback cheap enough
//!   to centralize;
//! * the **translation worker pool** (PR7's job/worker shape, promoted to
//!   serve all guests) with **single-flight dedup**: the first requester
//!   of a region claims an in-flight slot and every later requester
//!   subscribes by simply re-probing at its next dispatch boundary.
//!
//! Invalidation (deopt, blacklist growth, retranslation, abandonment)
//! publishes through two monotone counters: `blacklist_gen` (bumped under
//! the blacklist lock on every fresh pair) and `epoch` (bumped whenever a
//! published slot is withdrawn). Guests check `epoch` at dispatch-step
//! boundaries — the same publish discipline PR7 established for async
//! translation — and drop local pins on regions the hub withdrew. Stale
//! *executions* (a region optimized against an older blacklist) remain
//! legal: the alias hardware still catches every true aliasing, and the
//! hub counts them so the oracle layers can audit the window.
//!
//! Lock order, everywhere: blacklist → rollback counts → shard → queue.

use crate::region::RegionCode;
use crate::translate_service::{
    run_translation_job, FinishedTranslation, JobInput, JobKind, TranslationJob,
};
use crate::{ExecTier, SystemConfig};
use smarq::AllocScratch;
use smarq_guest::{BlockId, Profile, Program};
use smarq_ir::{FormationParams, OpOrigin};
use smarq_opt::{AliasBlacklist, OptConfig};
use smarq_vliw::MachineConfig;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// FNV-1a hash of the program's disassembly — the guest-code identity the
/// hub keys translations by. Two guests running byte-identical code hash
/// equal and share every translation; the textual form sidesteps hashing
/// floating-point immediates bit-by-bit in the instruction encoding.
pub fn hash_program(program: &Program) -> u64 {
    let text = smarq_guest::disassemble(program);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Identity of a translated region in the hub's shared cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RegionKey {
    /// [`hash_program`] of the guest program.
    pub program: u64,
    /// The region's entry block within that program.
    pub entry: BlockId,
}

/// A published translation: immutable code plus its identity, shared
/// across guests behind an `Arc`. Pointer identity doubles as version
/// identity — a retranslation publishes a *new* `SharedRegion`, so
/// `Arc::ptr_eq` tells a guest whether its pinned copy is still current.
pub struct SharedRegion {
    /// The cache key this region is published under.
    pub key: RegionKey,
    /// The guest program the region was formed from (kept so deopt-driven
    /// retranslation jobs are self-contained).
    pub program: Arc<Program>,
    /// The immutable translation artifact.
    pub code: RegionCode,
}

/// State of one key in the sharded cache.
enum Slot {
    /// Claimed by a requester; the translation is queued or computing.
    InFlight,
    /// Published and executable.
    Published(Arc<SharedRegion>),
    /// Permanently given up (blacklisting could not converge, or the
    /// rollback budget ran out). Guests interpret this entry forever.
    Abandoned,
}

/// Result of probing (or requesting) a region from the hub.
pub enum HubProbe {
    /// Published: pin the `Arc` and execute.
    Hit(Arc<SharedRegion>),
    /// A translation for this key is in flight (submitted by this call or
    /// an earlier one — single-flight: re-probe at a later boundary).
    Pending,
    /// Not cached and not requested (bounded queue was full); the block
    /// stays hot, so a later dispatch retries.
    Miss,
    /// Translation permanently abandoned for this key.
    Abandoned,
}

/// What a rollback report decided.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RollbackVerdict {
    /// The faulting pair was blacklisted and a conservative retranslation
    /// is in flight; interpret until it publishes.
    Retranslating,
    /// Translation was abandoned for this key (blacklisting cannot
    /// converge, or the per-key rollback budget ran out).
    Abandoned,
    /// Another guest's rollback already withdrew this region — nothing to
    /// do beyond the blacklist insert that was just folded in.
    Raced,
}

/// Hub configuration: the translation-relevant half of [`SystemConfig`]
/// plus pool sizing. Shared by every guest attached to the hub.
#[derive(Clone, Debug)]
pub struct HubConfig {
    /// Machine model.
    pub machine: MachineConfig,
    /// Optimizer configuration (hardware scheme, speculation switches).
    pub opt: OptConfig,
    /// Region-formation parameters.
    pub formation: FormationParams,
    /// Self-loop unrolling factor (1 disables).
    pub unroll_factor: u32,
    /// Execution count at which a guest block becomes hot.
    pub hot_threshold: u64,
    /// Per-key rollbacks after which the key is abandoned.
    pub max_rollbacks_per_region: u64,
    /// Statically verify every (re)translated region on the worker.
    pub verify_translations: bool,
    /// Execution tier of the attached guests (decides whether workers
    /// also lower regions for the fast-functional tier).
    pub exec_tier: ExecTier,
    /// Worker threads. `0` runs every translation inline on the
    /// requesting guest's thread — fully deterministic under a
    /// deterministic scheduler, the configuration the fuzz oracle drives.
    pub workers: u32,
    /// Bound of the job queue for *first* translations (deopt
    /// retranslations bypass the bound: the slot is already withdrawn,
    /// so dropping the job would strand the key in flight).
    pub queue_depth: u32,
    /// Shard count of the translation cache (rounded up to at least 1).
    pub shards: u32,
}

impl Default for HubConfig {
    fn default() -> Self {
        Self::from_system(&SystemConfig::default())
    }
}

impl HubConfig {
    /// Derives a hub configuration from a single-guest [`SystemConfig`]
    /// (the CLI path: one flag set configures either runtime).
    pub fn from_system(cfg: &SystemConfig) -> Self {
        HubConfig {
            machine: cfg.machine,
            opt: cfg.opt.clone(),
            formation: cfg.formation,
            unroll_factor: cfg.unroll_factor,
            hot_threshold: cfg.hot_threshold,
            max_rollbacks_per_region: cfg.max_rollbacks_per_region,
            verify_translations: cfg.verify_translations,
            exec_tier: cfg.exec_tier,
            workers: cfg.translate_workers,
            queue_depth: cfg.translate_queue_depth,
            shards: 8,
        }
    }
}

/// Monotone hub counters (all `SeqCst`; snapshot via
/// [`TranslationHub::stats`]). The oracle layers assert these never
/// regress and that the publish ledger balances.
#[derive(Default)]
struct Counters {
    translations_started: AtomicU64,
    translations_published: AtomicU64,
    retranslations: AtomicU64,
    gen_conflicts: AtomicU64,
    publish_conflicts: AtomicU64,
    single_flight_hits: AtomicU64,
    probe_hits: AtomicU64,
    queue_full: AtomicU64,
    rollbacks: AtomicU64,
    rollback_races: AtomicU64,
    abandoned: AtomicU64,
    regions_verified: AtomicU64,
    verify_errors: AtomicU64,
}

/// Snapshot of the hub's counters and cache shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HubStats {
    /// Unique keys ever claimed for a first translation. With
    /// single-flight dedup this equals the number of distinct hot regions
    /// across *all* guests — independent of how many guests run the same
    /// code, which is the multi-tenant economics the hub exists for.
    pub translations_started: u64,
    /// Translations published into the shared cache (first translations
    /// and retranslations).
    pub translations_published: u64,
    /// Conservative retranslations enqueued by rollback reports.
    pub retranslations: u64,
    /// Worker results discarded and recomputed because the blacklist
    /// generation advanced while the job ran.
    pub gen_conflicts: u64,
    /// Finished results dropped because the slot was withdrawn (abandoned
    /// or raced) while the job was in flight.
    pub publish_conflicts: u64,
    /// Requests that found a translation already in flight and subscribed
    /// instead of submitting a duplicate (single-flight dedup hits).
    pub single_flight_hits: u64,
    /// Requests answered from the published cache.
    pub probe_hits: u64,
    /// First-translation submissions dropped on a full bounded queue.
    pub queue_full: u64,
    /// Rollbacks reported by guests.
    pub rollbacks: u64,
    /// Rollback reports that lost the race to an earlier withdrawal.
    pub rollback_races: u64,
    /// Keys permanently abandoned.
    pub abandoned: u64,
    /// Regions statically verified on workers (verify-on-emit mode).
    pub regions_verified: u64,
    /// Error-severity verify findings (0 for a correct optimizer).
    pub verify_errors: u64,
    /// Current blacklist generation.
    pub blacklist_gen: u64,
    /// Current invalidation epoch.
    pub epoch: u64,
    /// Keys currently published.
    pub published_keys: u64,
    /// Keys currently in flight.
    pub inflight_keys: u64,
    /// Keys currently abandoned.
    pub abandoned_keys: u64,
}

struct JobQueue {
    jobs: VecDeque<HubJob>,
    shutdown: bool,
}

struct HubJob {
    key: RegionKey,
    program: Arc<Program>,
    job: TranslationJob,
}

struct HubShared {
    cfg: HubConfig,
    shards: Box<[Mutex<HashMap<RegionKey, Slot>>]>,
    blacklist: Mutex<AliasBlacklist>,
    /// Bumped under the blacklist lock on every fresh pair insert;
    /// read lock-free by guests for stale-execution accounting.
    blacklist_gen: AtomicU64,
    /// Bumped on every withdrawal of a published slot; guests revalidate
    /// their pinned regions when it moves (dispatch-boundary check).
    epoch: AtomicU64,
    rollback_counts: Mutex<HashMap<RegionKey, u64>>,
    queue: Mutex<JobQueue>,
    queue_cv: Condvar,
    c: Counters,
}

impl HubShared {
    fn shard(&self, key: RegionKey) -> &Mutex<HashMap<RegionKey, Slot>> {
        // Mix the entry index in: one guest program's regions spread
        // across shards instead of piling onto the program hash's shard.
        let h = key
            .program
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(key.entry.0));
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Builds a job against the *current* blacklist snapshot (generation
    /// read under the blacklist lock, so snapshot and counter agree).
    fn fresh_job(&self, kind: JobKind, input: JobInput, program: Arc<Program>) -> TranslationJob {
        let bl = self.blacklist.lock().unwrap();
        let blacklist_gen = self.blacklist_gen.load(Ordering::SeqCst);
        TranslationJob {
            kind,
            input,
            program,
            formation: self.cfg.formation,
            unroll_factor: self.cfg.unroll_factor,
            opt: self.cfg.opt.clone(),
            machine: self.cfg.machine,
            blacklist: bl.clone(),
            blacklist_gen,
            verify: self.cfg.verify_translations,
            compile_fast: self.cfg.exec_tier == ExecTier::Functional,
            // The hub serves many guest programs and caches no per-program
            // dataflow; assuming ⊤ at entry is sound (the nospec taint
            // just falls back to assume-the-worst precision).
            entry_state: None,
        }
    }

    /// Publishes a finished translation into its claimed slot — or hands
    /// the result back when the blacklist grew past the job's snapshot
    /// (the caller re-optimizes against a fresh one, mirroring
    /// `DynOptSystem`'s publish-reject-resubmit discipline). The
    /// blacklist lock is held across the slot swap so a publish can never
    /// interleave with a generation bump.
    fn install(
        &self,
        key: RegionKey,
        program: &Arc<Program>,
        fin: FinishedTranslation,
    ) -> Result<(), Box<FinishedTranslation>> {
        let _bl = self.blacklist.lock().unwrap();
        if fin.blacklist_gen != self.blacklist_gen.load(Ordering::SeqCst) {
            self.c.gen_conflicts.fetch_add(1, Ordering::SeqCst);
            return Err(Box::new(fin));
        }
        if fin.verified {
            self.c.regions_verified.fetch_add(1, Ordering::SeqCst);
            let errors = fin
                .diags
                .iter()
                .filter(|d| d.severity == smarq::Severity::Error)
                .count() as u64;
            self.c.verify_errors.fetch_add(errors, Ordering::SeqCst);
        }
        let mut shard = self.shard(key).lock().unwrap();
        match shard.get(&key) {
            Some(Slot::InFlight) => {
                let region = Arc::new(SharedRegion {
                    key,
                    program: Arc::clone(program),
                    code: RegionCode::from_finished(fin),
                });
                shard.insert(key, Slot::Published(region));
                self.c.translations_published.fetch_add(1, Ordering::SeqCst);
            }
            // Abandoned (or withdrawn and re-claimed by a racing path)
            // while the job was in flight: drop the result.
            _ => {
                self.c.publish_conflicts.fetch_add(1, Ordering::SeqCst);
            }
        }
        Ok(())
    }

    fn enqueue(&self, hj: HubJob, bounded: bool) -> bool {
        let mut q = self.queue.lock().unwrap();
        if bounded && q.jobs.len() >= self.cfg.queue_depth.max(1) as usize {
            return false;
        }
        q.jobs.push_back(hj);
        self.queue_cv.notify_one();
        true
    }
}

/// Runs one hub job to publication, recomputing against fresh blacklist
/// snapshots for as long as the generation moves underneath it (bounded:
/// the blacklist only grows toward the finite set of aliasing pairs).
fn compute_and_install(inner: &HubShared, mut hj: HubJob, scratch: &mut AllocScratch) {
    loop {
        let fin = run_translation_job(hj.job, scratch);
        match inner.install(hj.key, &hj.program, fin) {
            Ok(()) => return,
            Err(fin) => {
                let kind = fin.kind;
                let program = Arc::clone(&hj.program);
                hj.job = inner.fresh_job(kind, JobInput::Ready(Box::new(fin.sb)), program);
            }
        }
    }
}

fn worker_loop(inner: &HubShared) {
    let mut scratch = AllocScratch::new();
    loop {
        let hj = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if let Some(hj) = q.jobs.pop_front() {
                    break hj;
                }
                if q.shutdown {
                    return;
                }
                q = inner.queue_cv.wait(q).unwrap();
            }
        };
        compute_and_install(inner, hj, &mut scratch);
    }
}

/// The shared, thread-safe translation service (see module docs).
pub struct TranslationHub {
    inner: Arc<HubShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl TranslationHub {
    /// Creates a hub and spawns its worker pool (`cfg.workers` threads;
    /// `0` selects inline translation on the requesting guest's thread).
    pub fn new(cfg: HubConfig) -> Self {
        let shards = (0..cfg.shards.max(1))
            .map(|_| Mutex::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let workers = cfg.workers;
        let inner = Arc::new(HubShared {
            cfg,
            shards,
            blacklist: Mutex::new(AliasBlacklist::new()),
            blacklist_gen: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            rollback_counts: Mutex::new(HashMap::new()),
            queue: Mutex::new(JobQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            c: Counters::default(),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        TranslationHub {
            inner,
            workers: handles,
        }
    }

    /// The hub's configuration (guests read their shared knobs here).
    pub fn config(&self) -> &HubConfig {
        &self.inner.cfg
    }

    /// Whether translations run on background workers (`false` = inline
    /// on the requesting guest's thread).
    pub fn threaded(&self) -> bool {
        !self.workers.is_empty()
    }

    /// Current blacklist generation (lock-free read).
    pub fn blacklist_gen(&self) -> u64 {
        self.inner.blacklist_gen.load(Ordering::SeqCst)
    }

    /// Current invalidation epoch (lock-free read). Guests compare this
    /// at dispatch-step boundaries and revalidate their pinned regions
    /// when it moved.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }

    /// A snapshot of the accumulated blacklist.
    pub fn blacklist(&self) -> AliasBlacklist {
        self.inner.blacklist.lock().unwrap().clone()
    }

    /// Read-only probe: never claims or submits.
    pub fn probe(&self, key: RegionKey) -> HubProbe {
        let shard = self.inner.shard(key).lock().unwrap();
        match shard.get(&key) {
            Some(Slot::Published(r)) => HubProbe::Hit(Arc::clone(r)),
            Some(Slot::InFlight) => HubProbe::Pending,
            Some(Slot::Abandoned) => HubProbe::Abandoned,
            None => HubProbe::Miss,
        }
    }

    /// Requests the region for `key`, translating at most once across all
    /// guests (single-flight): the first requester claims the slot and
    /// submits; every concurrent requester observes `Pending` and simply
    /// re-probes at a later dispatch boundary. With `workers = 0` the
    /// translation runs inline and the call returns `Hit` directly.
    pub fn request(
        &self,
        key: RegionKey,
        program: &Arc<Program>,
        profile: &Profile,
        scratch: &mut AllocScratch,
    ) -> HubProbe {
        let inner = &*self.inner;
        {
            let mut shard = inner.shard(key).lock().unwrap();
            match shard.get(&key) {
                Some(Slot::Published(r)) => {
                    inner.c.probe_hits.fetch_add(1, Ordering::SeqCst);
                    return HubProbe::Hit(Arc::clone(r));
                }
                Some(Slot::InFlight) => {
                    inner.c.single_flight_hits.fetch_add(1, Ordering::SeqCst);
                    return HubProbe::Pending;
                }
                Some(Slot::Abandoned) => return HubProbe::Abandoned,
                None => {
                    shard.insert(key, Slot::InFlight);
                }
            }
        }
        inner.c.translations_started.fetch_add(1, Ordering::SeqCst);
        let job = inner.fresh_job(
            JobKind::Translate { entry: key.entry },
            JobInput::Form {
                profile: profile.clone(),
            },
            Arc::clone(program),
        );
        let hj = HubJob {
            key,
            program: Arc::clone(program),
            job,
        };
        if self.threaded() {
            if inner.enqueue(hj, true) {
                HubProbe::Pending
            } else {
                // Full queue: withdraw the claim so a later dispatch of
                // the still-hot block retries, and un-count the start —
                // nothing was translated for it.
                let mut shard = inner.shard(key).lock().unwrap();
                if matches!(shard.get(&key), Some(Slot::InFlight)) {
                    shard.remove(&key);
                }
                drop(shard);
                inner.c.translations_started.fetch_sub(1, Ordering::SeqCst);
                inner.c.queue_full.fetch_add(1, Ordering::SeqCst);
                HubProbe::Miss
            }
        } else {
            compute_and_install(inner, hj, scratch);
            self.probe(key)
        }
    }

    /// Reports an alias-exception rollback of `region`, blacklisting the
    /// faulting pair for *every* guest. If the region is still current,
    /// it is withdrawn and either conservatively retranslated or — when
    /// blacklisting cannot converge (a repeat pair on a current-generation
    /// region) or the per-key rollback budget ran out — abandoned. A
    /// repeat pair on a *stale* region retranslates instead of abandoning:
    /// the cure (code built against the grown blacklist) is exactly what
    /// the retranslation produces. The epoch bump tells every other guest
    /// to drop its pin at the next dispatch boundary.
    pub fn report_rollback(
        &self,
        region: &Arc<SharedRegion>,
        a: OpOrigin,
        b: OpOrigin,
        scratch: &mut AllocScratch,
    ) -> RollbackVerdict {
        let inner = &*self.inner;
        inner.c.rollbacks.fetch_add(1, Ordering::SeqCst);
        let key = region.key;
        let mut bl = inner.blacklist.lock().unwrap();
        let fresh = bl.insert(a, b);
        if fresh {
            inner.blacklist_gen.fetch_add(1, Ordering::SeqCst);
        }
        let gen = inner.blacklist_gen.load(Ordering::SeqCst);
        let over_budget = {
            let mut rb = inner.rollback_counts.lock().unwrap();
            let n = rb.entry(key).or_insert(0);
            *n += 1;
            *n > inner.cfg.max_rollbacks_per_region
        };
        let cannot_converge = !fresh && region.code.blacklist_gen == gen;
        let mut shard = inner.shard(key).lock().unwrap();
        let verdict = match shard.get(&key) {
            Some(Slot::Published(cur)) if Arc::ptr_eq(cur, region) => {
                if over_budget || cannot_converge {
                    shard.insert(key, Slot::Abandoned);
                    inner.c.abandoned.fetch_add(1, Ordering::SeqCst);
                    inner.epoch.fetch_add(1, Ordering::SeqCst);
                    RollbackVerdict::Abandoned
                } else {
                    shard.insert(key, Slot::InFlight);
                    inner.c.retranslations.fetch_add(1, Ordering::SeqCst);
                    inner.epoch.fetch_add(1, Ordering::SeqCst);
                    RollbackVerdict::Retranslating
                }
            }
            _ => RollbackVerdict::Raced,
        };
        drop(shard);
        if verdict == RollbackVerdict::Raced {
            inner.c.rollback_races.fetch_add(1, Ordering::SeqCst);
            return verdict;
        }
        if verdict == RollbackVerdict::Retranslating {
            // Conservative retranslation against the just-grown snapshot
            // (the blacklist lock is still held, so snapshot and
            // generation agree); the region's superblock rides along, so
            // only optimization re-runs.
            let job = TranslationJob {
                kind: JobKind::Translate { entry: key.entry },
                input: JobInput::Ready(Box::new(region.code.sb.clone())),
                program: Arc::clone(&region.program),
                formation: inner.cfg.formation,
                unroll_factor: inner.cfg.unroll_factor,
                opt: inner.cfg.opt.clone(),
                machine: inner.cfg.machine,
                blacklist: bl.clone(),
                blacklist_gen: gen,
                verify: inner.cfg.verify_translations,
                compile_fast: inner.cfg.exec_tier == ExecTier::Functional,
                entry_state: None,
            };
            drop(bl);
            let hj = HubJob {
                key,
                program: Arc::clone(&region.program),
                job,
            };
            if self.threaded() {
                // Unbounded: the slot is already withdrawn, so dropping
                // the job would strand the key in flight forever.
                inner.enqueue(hj, false);
            } else {
                compute_and_install(inner, hj, scratch);
            }
        }
        verdict
    }

    /// Spins until no translation is queued or in flight — the quiesce
    /// point benches and tests use before reading final counters. Only
    /// meaningful once guests stop submitting.
    pub fn drain(&self) {
        loop {
            let queued = !self.inner.queue.lock().unwrap().jobs.is_empty();
            let inflight = self.inner.shards.iter().any(|s| {
                s.lock()
                    .unwrap()
                    .values()
                    .any(|v| matches!(v, Slot::InFlight))
            });
            if !queued && !inflight {
                return;
            }
            thread::yield_now();
        }
    }

    /// Snapshot of the hub counters and cache shape.
    pub fn stats(&self) -> HubStats {
        let c = &self.inner.c;
        let (mut published, mut inflight, mut abandoned_keys) = (0u64, 0u64, 0u64);
        for s in self.inner.shards.iter() {
            for slot in s.lock().unwrap().values() {
                match slot {
                    Slot::Published(_) => published += 1,
                    Slot::InFlight => inflight += 1,
                    Slot::Abandoned => abandoned_keys += 1,
                }
            }
        }
        HubStats {
            translations_started: c.translations_started.load(Ordering::SeqCst),
            translations_published: c.translations_published.load(Ordering::SeqCst),
            retranslations: c.retranslations.load(Ordering::SeqCst),
            gen_conflicts: c.gen_conflicts.load(Ordering::SeqCst),
            publish_conflicts: c.publish_conflicts.load(Ordering::SeqCst),
            single_flight_hits: c.single_flight_hits.load(Ordering::SeqCst),
            probe_hits: c.probe_hits.load(Ordering::SeqCst),
            queue_full: c.queue_full.load(Ordering::SeqCst),
            rollbacks: c.rollbacks.load(Ordering::SeqCst),
            rollback_races: c.rollback_races.load(Ordering::SeqCst),
            abandoned: c.abandoned.load(Ordering::SeqCst),
            regions_verified: c.regions_verified.load(Ordering::SeqCst),
            verify_errors: c.verify_errors.load(Ordering::SeqCst),
            blacklist_gen: self.blacklist_gen(),
            epoch: self.epoch(),
            published_keys: published,
            inflight_keys: inflight,
            abandoned_keys,
        }
    }
}

impl Drop for TranslationHub {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock().unwrap();
            q.shutdown = true;
            q.jobs.clear();
        }
        self.inner.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}
