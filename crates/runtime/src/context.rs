//! Per-tenant guest execution context for the multi-guest runtime.
//!
//! A [`GuestContext`] is the unshared half of the `DynOptSystem` split:
//! its own interpreter (architectural state), resident `VliwState` /
//! `FastState`, cycle and fast-functional executors (each owning its
//! alias-detection queue — per-context by construction, as the paper's
//! software-managed queue is per-hardware-context), statistics, and the
//! chain-follow fast path over a private flat cache of *pins* into the
//! shared [`crate::TranslationHub`] cache.
//!
//! Sharing protocol: published regions are pinned as
//! `Arc<SharedRegion>` and executed without any hub interaction on the
//! hot path. At every dispatch-step boundary the context compares the
//! hub's invalidation epoch with the one it last saw and, when it moved,
//! revalidates every pin (dropping withdrawn or replaced regions and
//! severing their chain links — PR5's unlink machinery, local edition).
//! Mid-chain executions of a just-withdrawn region are legal stale
//! executions, exactly the window PR7's async publication opened; the
//! alias hardware still catches every true aliasing.
//!
//! The tier-down sampling oracle of the single-guest system is *not*
//! replicated here: the multiguest fuzz oracle cross-checks per-guest
//! architectural state against solo runs instead, which covers the same
//! lowering bugs without cloning guest memory on the multi-guest hot
//! path.

use crate::hub::{HubProbe, RegionKey, RollbackVerdict, SharedRegion, TranslationHub};
use crate::region::{ChainAccum, ChainLink, NO_REGION};
use crate::stats::{RegionRecord, SystemStats};
use crate::system::{ExecTier, RunStatus, StopReason};
use smarq::AllocScratch;
use smarq_guest::{BlockId, Interpreter, Program};
use smarq_opt::fastcomp::FastSim;
use smarq_vliw::{
    AliasViolation, AnyAliasHw, FastState, MachineConfig, RegionOutcome, Simulator, VliwState,
};
use std::sync::Arc;

/// A pinned shared region plus this guest's private chain links
/// (memoization is per-guest: links index into *this* context's region
/// table and are never shared across threads).
struct LocalRegion {
    shared: Arc<SharedRegion>,
    links: Vec<ChainLink>,
}

/// One guest tenant: private architectural and resident state, executing
/// translations shared through a [`TranslationHub`].
pub struct GuestContext {
    id: usize,
    program: Arc<Program>,
    program_hash: u64,
    hot_threshold: u64,
    exec_tier: ExecTier,
    machine: MachineConfig,
    interp: Interpreter,
    vstate: VliwState,
    sim: Simulator<AnyAliasHw>,
    fast_sim: FastSim,
    fstate: FastState,
    /// Flat cache: `cache[block.index()]` holds the local region index or
    /// [`NO_REGION`] — same one-indexed-load dispatch as the single-guest
    /// system, over pins instead of owned regions.
    cache: Vec<u32>,
    regions: Vec<Option<LocalRegion>>,
    /// `abandoned[block.index()]`: the hub gave up on this entry.
    abandoned: Vec<bool>,
    scratch: AllocScratch,
    stats: SystemStats,
    /// Hub invalidation epoch last seen; pins are revalidated at the
    /// next dispatch-step boundary after it moves.
    seen_epoch: u64,
    cursor: Option<BlockId>,
}

impl GuestContext {
    /// Creates a context for `program`, attached to `hub` (the hub's
    /// config supplies every shared knob: hot threshold, exec tier,
    /// machine model).
    pub fn new(id: usize, program: Program, hub: &TranslationHub) -> Self {
        let cfg = hub.config();
        let hw = AnyAliasHw::for_kind(cfg.opt.hw, cfg.opt.num_alias_regs);
        let sim = Simulator::new(cfg.machine, hw);
        let fast_sim = FastSim::new(cfg.opt.hw, cfg.opt.num_alias_regs);
        let mut interp = Interpreter::new();
        interp.load_data(&program);
        let num_blocks = program.num_blocks();
        let entry = program.entry();
        let program_hash = crate::hub::hash_program(&program);
        GuestContext {
            id,
            program: Arc::new(program),
            program_hash,
            hot_threshold: cfg.hot_threshold,
            exec_tier: cfg.exec_tier,
            machine: cfg.machine,
            interp,
            vstate: VliwState::new(),
            sim,
            fast_sim,
            fstate: FastState::new(),
            cache: vec![NO_REGION; num_blocks],
            regions: Vec::new(),
            abandoned: vec![false; num_blocks],
            scratch: AllocScratch::new(),
            stats: SystemStats::default(),
            seen_epoch: 0,
            cursor: Some(entry),
        }
    }

    /// This guest's tenant id (assigned by the creator; stable).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The guest-code hash this context's regions are keyed by.
    pub fn program_hash(&self) -> u64 {
        self.program_hash
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// The guest interpreter (architectural state lives here).
    pub fn interp(&self) -> &Interpreter {
        &self.interp
    }

    /// Whether the guest program has halted.
    pub fn halted(&self) -> bool {
        self.cursor.is_none()
    }

    /// Runs until the guest halts or roughly `budget` guest instructions
    /// have retired (resumable, like the single-guest system).
    pub fn run_to_completion(&mut self, hub: &TranslationHub, budget: u64) -> StopReason {
        match self.run_bounded(hub, u64::MAX, budget) {
            RunStatus::Halted => StopReason::Halted,
            RunStatus::BudgetExhausted => StopReason::BudgetExhausted,
            RunStatus::Running => unreachable!("u64::MAX dispatch steps"),
        }
    }

    /// Runs at most `max_steps` dispatch steps (each an interpreted block
    /// or a region chain). Hub invalidations are picked up at each step
    /// boundary — the multi-guest mirror of PR7's publish discipline.
    pub fn run_bounded(&mut self, hub: &TranslationHub, max_steps: u64, budget: u64) -> RunStatus {
        let Some(mut cur) = self.cursor else {
            return RunStatus::Halted;
        };
        let mut steps = 0u64;
        while steps < max_steps {
            steps += 1;
            let epoch = hub.epoch();
            if epoch != self.seen_epoch {
                self.revalidate(hub);
                self.seen_epoch = epoch;
            }
            if self.live_guest_instrs() >= budget {
                self.cursor = Some(cur);
                self.sync_interp_stats();
                return RunStatus::BudgetExhausted;
            }
            let next = self.step(hub, cur, budget);
            match next {
                Some(b) => cur = b,
                None => {
                    self.cursor = None;
                    self.sync_interp_stats();
                    return RunStatus::Halted;
                }
            }
        }
        self.cursor = Some(cur);
        self.sync_interp_stats();
        RunStatus::Running
    }

    #[inline]
    fn live_guest_instrs(&self) -> u64 {
        self.interp.executed_instrs() + self.stats.region_guest_instrs
    }

    fn sync_interp_stats(&mut self) {
        self.stats.interp_instrs = self.interp.executed_instrs();
        self.stats.interp_cycles = self.stats.interp_instrs * self.machine.interp_cycles_per_instr;
    }

    #[inline]
    fn cached_region(&self, b: BlockId) -> Option<usize> {
        match self.cache.get(b.index()) {
            Some(&idx) if idx != NO_REGION => Some(idx as usize),
            _ => None,
        }
    }

    fn step(&mut self, hub: &TranslationHub, cur: BlockId, budget: u64) -> Option<BlockId> {
        self.stats.dispatch_lookups += 1;
        if let Some(idx) = self.cached_region(cur) {
            return self.run_region_local(hub, idx, budget);
        }
        let next = self.interp.step_block(&self.program, cur);
        self.maybe_request(hub, cur);
        next
    }

    /// Hot-block detection after an interpreted block: probe-or-request
    /// through the hub. Single-flight means at most one guest anywhere
    /// actually translates; everyone else subscribes by re-probing here
    /// on later dispatches of the still-hot block.
    fn maybe_request(&mut self, hub: &TranslationHub, cur: BlockId) {
        if self.interp.profile().block_count(cur) >= self.hot_threshold
            && self.cached_region(cur).is_none()
            && !self.abandoned[cur.index()]
        {
            let key = RegionKey {
                program: self.program_hash,
                entry: cur,
            };
            match hub.request(key, &self.program, self.interp.profile(), &mut self.scratch) {
                HubProbe::Hit(r) => self.install_local(r),
                HubProbe::Pending | HubProbe::Miss => {}
                HubProbe::Abandoned => self.abandoned[cur.index()] = true,
            }
        }
    }

    /// Pins a published region into the local flat cache. Per-guest
    /// region records count *installs* (a retranslated region re-installs
    /// under a new local slot).
    fn install_local(&mut self, r: Arc<SharedRegion>) {
        let entry = r.code.entry;
        let links = vec![ChainLink::Unresolved; r.code.vliw.exits.len()];
        let idx = self.regions.len();
        self.stats.regions_formed += 1;
        self.stats.per_region.push(RegionRecord {
            entry,
            opt: r.code.opt_stats,
            entries: 0,
            rollbacks: 0,
            retranslations: 0,
        });
        self.regions.push(Some(LocalRegion { shared: r, links }));
        self.cache[entry.index()] = idx as u32;
    }

    /// Drops every pin the hub has withdrawn or replaced since the last
    /// boundary (pointer identity decides: a retranslation published a
    /// *new* `Arc`, so the old pin no longer matches).
    fn revalidate(&mut self, hub: &TranslationHub) {
        for idx in 0..self.regions.len() {
            let Some(lr) = &self.regions[idx] else {
                continue;
            };
            let key = lr.shared.key;
            let entry = lr.shared.code.entry;
            let keep = match hub.probe(key) {
                HubProbe::Hit(cur) => {
                    let Some(lr) = &self.regions[idx] else {
                        unreachable!("checked above")
                    };
                    Arc::ptr_eq(&cur, &lr.shared)
                }
                HubProbe::Abandoned => {
                    self.abandoned[entry.index()] = true;
                    false
                }
                HubProbe::Pending | HubProbe::Miss => false,
            };
            if !keep {
                self.remove_local(idx);
            }
        }
    }

    /// Unpins local slot `idx`: clears the flat-cache mapping, drops the
    /// slot's own memoized links and severs every link chaining into it.
    fn remove_local(&mut self, idx: usize) {
        let Some(lr) = self.regions[idx].take() else {
            return;
        };
        let entry = lr.shared.code.entry;
        if self.cache[entry.index()] == idx as u32 {
            self.cache[entry.index()] = NO_REGION;
        }
        let resolved = lr
            .links
            .iter()
            .filter(|l| **l != ChainLink::Unresolved)
            .count() as u64;
        self.stats.chain_unlinks += resolved;
        let stale = ChainLink::Region(idx as u32);
        for r in self.regions.iter_mut().flatten() {
            for l in &mut r.links {
                if *l == stale {
                    *l = ChainLink::Unresolved;
                    self.stats.chain_unlinks += 1;
                }
            }
        }
    }

    fn store_resident(&mut self, functional: bool) {
        if functional {
            self.fstate
                .store_guest(&mut self.interp.regs, &mut self.interp.fregs);
        } else {
            self.vstate
                .store_guest(&mut self.interp.regs, &mut self.interp.fregs);
        }
    }

    fn flush_chain_stats(&mut self, acc: &ChainAccum) {
        self.stats.region_guest_instrs += acc.guest;
        self.stats.vliw_cycles += acc.cycles;
        self.stats.region_mem_ops += acc.mem_ops;
        self.stats.alias_entries_scanned += acc.scanned;
        self.stats.region_entries += acc.entries;
        self.stats.chain_follows += acc.follows;
        self.stats.dispatch_lookups += acc.lookups;
        self.stats.async_stale_entries += acc.stale;
    }

    /// The chained region-execution loop over pinned shared code — one
    /// body for both tiers (the cycle simulator and the fast-functional
    /// executor keep guest state resident in their own register files;
    /// only the marshal points and the run call differ).
    fn run_region_local(
        &mut self,
        hub: &TranslationHub,
        start: usize,
        budget: u64,
    ) -> Option<BlockId> {
        let functional = self.exec_tier == ExecTier::Functional;
        if functional {
            self.fstate
                .load_guest(&self.interp.regs, &self.interp.fregs);
        } else {
            self.vstate
                .load_guest(&self.interp.regs, &self.interp.fregs);
        }
        let guest_base = self.interp.executed_instrs() + self.stats.region_guest_instrs;
        let hub_gen = hub.blacklist_gen();
        let mut acc = ChainAccum::default();
        let mut idx = start;
        let mut run_idx = idx;
        let mut run_entries = 0u64;
        loop {
            let region = self.regions[idx]
                .as_ref()
                .expect("dispatched region is pinned");
            if region.shared.code.blacklist_gen != hub_gen {
                acc.stale += 1;
            }
            let (outcome, rstats) = if functional {
                let fast = region
                    .shared
                    .code
                    .fast
                    .as_ref()
                    .expect("hub compiles fast code for functional-tier guests");
                self.stats.tier_fast_entries += 1;
                self.fast_sim
                    .run_region(fast, &mut self.fstate, &mut self.interp.mem)
            } else {
                let (o, r) = self
                    .sim
                    .run_region_resident(
                        &region.shared.code.vliw,
                        region.shared.code.write_mask,
                        &mut self.vstate,
                        &mut self.interp.mem,
                    )
                    .expect("translated region is well formed");
                acc.cycles += r.cycles;
                (o, r)
            };
            acc.mem_ops += rstats.mem_ops;
            acc.scanned += rstats.entries_scanned;
            acc.entries += 1;
            run_entries += 1;
            let exit_id = match outcome {
                RegionOutcome::Exited { exit_id } => exit_id as usize,
                RegionOutcome::AliasException(v) => {
                    // The executor rolled the resident state back to this
                    // region's entry; surface it and deoptimize through
                    // the hub (blacklist + withdraw + retranslate).
                    self.store_resident(functional);
                    if functional {
                        self.stats.tier_deopts += 1;
                    }
                    self.stats.per_region[run_idx].entries += run_entries;
                    self.flush_chain_stats(&acc);
                    return self.deopt(hub, idx, v);
                }
            };
            acc.guest += self.regions[idx]
                .as_ref()
                .expect("still pinned")
                .shared
                .code
                .exit_instrs[exit_id];
            let link = self.regions[idx].as_ref().expect("still pinned").links[exit_id];
            let next_idx = match link {
                ChainLink::Region(j) => j as usize,
                ChainLink::Unresolved => {
                    let target = self.regions[idx]
                        .as_ref()
                        .expect("still pinned")
                        .shared
                        .code
                        .vliw
                        .exits[exit_id]
                        .guest_block;
                    let Some(target) = target else {
                        // Guest halt.
                        self.store_resident(functional);
                        self.stats.per_region[run_idx].entries += run_entries;
                        self.flush_chain_stats(&acc);
                        return None;
                    };
                    acc.lookups += 1;
                    match self.cached_region(BlockId(target)) {
                        Some(j) => {
                            self.regions[idx].as_mut().expect("still pinned").links[exit_id] =
                                ChainLink::Region(j as u32);
                            j
                        }
                        None => {
                            // Not pinned (yet): never memoized, so a later
                            // publish of the target is picked up here.
                            self.store_resident(functional);
                            self.stats.per_region[run_idx].entries += run_entries;
                            self.flush_chain_stats(&acc);
                            return Some(BlockId(target));
                        }
                    }
                }
            };
            // Chain boundary: stop following links once the budget is
            // spent so the scheduler can observe it.
            if guest_base + acc.guest >= budget {
                self.store_resident(functional);
                self.stats.per_region[run_idx].entries += run_entries;
                self.flush_chain_stats(&acc);
                return Some(
                    self.regions[next_idx]
                        .as_ref()
                        .expect("linked region is pinned")
                        .shared
                        .code
                        .entry,
                );
            }
            acc.follows += 1;
            if next_idx != run_idx {
                self.stats.per_region[run_idx].entries += run_entries;
                run_idx = next_idx;
                run_entries = 0;
            }
            idx = next_idx;
        }
    }

    /// Alias-exception deopt: report the faulting pair to the hub (which
    /// blacklists it for every guest and withdraws/retranslates or
    /// abandons the region), drop the local pin, and make forward
    /// progress by interpreting one block from the region entry.
    fn deopt(&mut self, hub: &TranslationHub, idx: usize, v: AliasViolation) -> Option<BlockId> {
        self.stats.rollbacks += 1;
        self.stats.per_region[idx].rollbacks += 1;
        let shared = Arc::clone(
            &self.regions[idx]
                .as_ref()
                .expect("faulting region is pinned")
                .shared,
        );
        let entry = shared.code.entry;
        let a = shared.code.tag_origin[v.checker_tag as usize];
        let b = shared.code.tag_origin[v.producer_tag as usize];
        let verdict = hub.report_rollback(&shared, a, b, &mut self.scratch);
        self.remove_local(idx);
        if verdict == RollbackVerdict::Abandoned {
            self.abandoned[entry.index()] = true;
        }
        self.interp.step_block(&self.program, entry)
    }
}
