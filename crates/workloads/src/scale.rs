//! Test-scale control.
//!
//! Randomized sweeps (seed ranges, fuzz case counts) read their sizes
//! through [`scaled_count`]/[`scaled_iters`], which multiply the baseline
//! by the `SMARQ_TEST_SCALE` environment variable: CI leaves it unset
//! (scale 1), a local soak run sets e.g. `SMARQ_TEST_SCALE=20`, and a
//! quick edit-compile loop can set `SMARQ_TEST_SCALE=0.2`. Results never
//! scale below 1 so every sweep keeps at least one case.

use std::sync::OnceLock;

/// The current scale factor (default 1.0; invalid or non-positive values
/// of `SMARQ_TEST_SCALE` fall back to the default). Read once per
/// process.
pub fn test_scale() -> f64 {
    static SCALE: OnceLock<f64> = OnceLock::new();
    *SCALE.get_or_init(|| {
        std::env::var("SMARQ_TEST_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|s| s.is_finite() && *s > 0.0)
            .unwrap_or(1.0)
    })
}

/// `base` cases scaled by [`test_scale`], at least 1.
pub fn scaled_count(base: u64) -> u64 {
    ((base as f64 * test_scale()).round() as u64).max(1)
}

/// `base` loop iterations scaled by [`test_scale`], at least 1.
pub fn scaled_iters(base: i64) -> i64 {
    ((base as f64 * test_scale()).round() as i64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_default_scale() {
        // The suite never sets SMARQ_TEST_SCALE for its own run, so the
        // factor must be whatever the environment says — and with the
        // default environment, identity.
        if std::env::var_os("SMARQ_TEST_SCALE").is_none() {
            assert_eq!(test_scale(), 1.0);
            assert_eq!(scaled_count(16), 16);
            assert_eq!(scaled_iters(150), 150);
        }
    }

    #[test]
    fn never_scales_to_zero() {
        assert!(scaled_count(1) >= 1);
        assert!(scaled_iters(1) >= 1);
    }
}
