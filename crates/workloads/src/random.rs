//! Random workload generation.
//!
//! Complements the 14 named kernels with arbitrarily many pseudo-random
//! loop workloads: random bodies over a small pool of base addresses, so
//! some pointer pairs truly alias at runtime (exercising detection,
//! rollback and blacklisting) while others only *may* alias to the
//! analysis (exercising speculation). Generation is deterministic in the
//! seed.

use crate::kernels::Workload;
use smarq::prng::Prng;
use smarq_guest::{AluOp, CmpOp, FReg, FpuOp, Program, ProgramBuilder, Reg};

/// Parameters for [`random_workload_with`].
#[derive(Clone, Copy, Debug)]
pub struct RandomParams {
    /// Straight-line operations per loop body.
    pub body_ops: usize,
    /// Loop trip count.
    pub iters: i64,
    /// Number of distinct base addresses the six pointer registers are
    /// drawn from; smaller pools mean more genuine runtime aliasing.
    pub address_pool: u64,
}

impl Default for RandomParams {
    fn default() -> Self {
        RandomParams {
            body_ops: 24,
            iters: 400,
            address_pool: 4,
        }
    }
}

/// Generates a random loop workload from `seed` with default parameters.
///
/// ```
/// use smarq_workloads::random_workload;
/// let a = random_workload(7);
/// let b = random_workload(7);
/// assert_eq!(a.program, b.program, "deterministic in the seed");
/// ```
pub fn random_workload(seed: u64) -> Workload {
    random_workload_with(seed, RandomParams::default())
}

/// Generates a random loop workload from `seed` and explicit parameters.
pub fn random_workload_with(seed: u64, params: RandomParams) -> Workload {
    Workload {
        name: "random",
        program: build(seed, params),
        description: "pseudo-random loop workload (seeded)",
    }
}

fn build(seed: u64, params: RandomParams) -> Program {
    let mut rng = Prng::new(seed);
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();

    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), params.iters);
    // Pointer registers r10..r15 over a small address pool.
    for r in 10u8..16 {
        let slot = rng.bounded(params.address_pool.max(1));
        b.iconst(entry, Reg(r), 0x1000 + slot as i64 * 128);
    }
    // Seed value registers.
    for r in 16u8..22 {
        b.iconst(entry, Reg(r), rng.range_i64(-8, 32));
    }
    for f in 8u8..16 {
        b.fconst(entry, FReg(f), f64::from(rng.range_u32(1, 32)) * 0.25);
    }
    b.jump(entry, body);

    let alu = [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Xor, AluOp::And];
    let fpu = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Max];
    for _ in 0..params.body_ops {
        let base = Reg(rng.range_u32(10, 16) as u8);
        let disp = i64::from(rng.range_u32(0, 8)) * 8;
        match rng.bounded(6) {
            0 => b.ld(body, Reg(rng.range_u32(16, 22) as u8), base, disp),
            1 => b.st(body, Reg(rng.range_u32(16, 22) as u8), base, disp),
            2 => b.fld(body, FReg(rng.range_u32(8, 16) as u8), base, disp),
            3 => b.fst(body, FReg(rng.range_u32(8, 16) as u8), base, disp),
            4 => b.alu(
                body,
                *rng.pick(&alu),
                Reg(rng.range_u32(16, 22) as u8),
                Reg(rng.range_u32(16, 22) as u8),
                Reg(rng.range_u32(16, 22) as u8),
            ),
            _ => b.fpu(
                body,
                *rng.pick(&fpu),
                FReg(rng.range_u32(8, 16) as u8),
                FReg(rng.range_u32(8, 16) as u8),
                FReg(rng.range_u32(8, 16) as u8),
            ),
        }
    }
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    b.finish(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::{Interpreter, RunOutcome};

    #[test]
    fn deterministic_and_halting() {
        for seed in 0..8 {
            let w1 = random_workload(seed);
            let w2 = random_workload(seed);
            assert_eq!(w1.program, w2.program);
            let mut i = Interpreter::new();
            assert_eq!(i.run(&w1.program, 10_000_000), RunOutcome::Halted);
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_workload(1).program, random_workload(2).program);
    }

    #[test]
    fn params_control_shape() {
        let small = random_workload_with(
            3,
            RandomParams {
                body_ops: 4,
                iters: 10,
                address_pool: 1,
            },
        );
        let big = random_workload_with(
            3,
            RandomParams {
                body_ops: 64,
                iters: 10,
                address_pool: 1,
            },
        );
        assert!(big.program.static_instrs() > small.program.static_instrs());
    }
}
