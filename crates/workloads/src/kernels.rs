//! The kernel generator and the 14 benchmark configurations.

use smarq_guest::{AluOp, CmpOp, FReg, FpuOp, Program, ProgramBuilder, Reg};

/// A named benchmark workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (SPECFP2000 benchmark it stands in for).
    pub name: &'static str,
    /// The guest program.
    pub program: Program,
    /// One-line description of the modeled behavior.
    pub description: &'static str,
}

/// The benchmark names, in the paper's presentation order.
pub const WORKLOAD_NAMES: [&str; 14] = [
    "wupwise", "swim", "mgrid", "applu", "mesa", "galgel", "art", "equake", "facerec", "ammp",
    "lucas", "fma3d", "sixtrack", "apsi",
];

/// Knobs of the common loop-kernel shape.
///
/// The loop body is:
/// 1. a *late chain*: `chain_divs` dependent FP divides (a long-latency
///    producer);
/// 2. `late_stores` stores of the chain result through base `r5` — their
///    value arrives late, so anything ordered after them serializes without
///    speculation;
/// 3. `strands` independent strands `fld [r6+8i] → muls → (fst [r7+8i])`
///    that *can* all hoist above the late stores when the hardware allows
///    speculation (each strand-load may-alias every `r5` store to the
///    analysis, but never truly aliases);
/// 4. optional special patterns (redundant loads, dead stores, a
///    must-alias consumer of an early store, a truly aliasing pair).
#[derive(Clone, Copy, Debug)]
struct Kernel {
    iters: i64,
    /// Serialized phases per loop body. Each group runs its own late
    /// chain, late stores and strands; the chain carrier serializes the
    /// groups, so alias registers of earlier groups can be released by
    /// rotation before later groups allocate theirs (paper §3.2).
    groups: u32,
    chain_divs: u32,
    late_stores: u32,
    strands: u32,
    strand_muls: u32,
    strand_store: bool,
    /// Add a redundant-load pair per `n` strands (speculative load elim).
    redundant_loads: bool,
    /// Add a dead-store pair (speculative store elimination).
    dead_stores: bool,
    /// mesa pattern: early store pinned behind the late stores feeds a
    /// must-alias load chain (benefits from store-store reordering).
    pinned_early_store: bool,
    /// equake pattern: one strand's pointer *truly* equals the store base,
    /// causing a real alias exception on first execution.
    true_alias_strand: bool,
    /// Figure 3 pattern: a load/store pair that truly aliases but is never
    /// reordered. SMARQ's anti-constraints keep it silent; the ALAT's
    /// check-everything stores raise a *false positive*.
    alat_fp_pair: bool,
    /// ammp pattern (paper Figure 16 note): an early-value store that
    /// store-reordering hoists above a late store it *truly* aliases —
    /// the speculation faults at runtime and rolls the region back, so
    /// enabling store reordering costs a little here.
    reordered_true_alias_stores: bool,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel {
            iters: 20_000,
            groups: 2,
            chain_divs: 2,
            late_stores: 4,
            strands: 6,
            strand_muls: 2,
            strand_store: true,
            redundant_loads: false,
            dead_stores: false,
            pinned_early_store: false,
            true_alias_strand: false,
            alat_fp_pair: false,
            reordered_true_alias_stores: false,
        }
    }
}

// Register conventions inside kernels:
//   r1: induction variable     r2: iteration bound
//   r5: "output" array base (late stores)    0x2000
//   r6: "input" array base (strand loads)    0x8000
//   r7: "result" array base (strand stores)  0x20000
//   r8: scratch base for special patterns    0x40000
//   r9: truly-aliasing pointer (== r5's address) for `true_alias_strand`
//   f3: FP constant near 1; f1: chain carrier; f2: chain result
//   f4/f5: strand temporaries; f6: early-store value; f7: accumulator

fn build(k: &Kernel) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();

    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), k.iters);
    b.iconst(entry, Reg(5), 0x2000);
    b.iconst(entry, Reg(6), 0x8000);
    b.iconst(entry, Reg(7), 0x20000);
    b.iconst(entry, Reg(8), 0x40000);
    b.iconst(entry, Reg(9), 0x2000); // same address as r5, distinct register
    b.iconst(entry, Reg(10), 0x5000); // FP-pattern load pointer
    b.iconst(entry, Reg(11), 0x5000); // same address, used by its stores
    b.fconst(entry, FReg(1), 3.5);
    b.fconst(entry, FReg(3), 1.0001);
    b.fconst(entry, FReg(6), 2.25);
    b.fconst(entry, FReg(7), 0.0);
    // Seed the input array so strand loads read interesting data.
    for i in 0..(k.strands * k.groups) {
        b.fconst(entry, FReg(4), 1.0 + f64::from(i) * 0.125);
        b.fst(entry, FReg(4), Reg(6), i64::from(i) * 8);
    }
    // Per-strand temporary registers (f8..f31) so strands are genuinely
    // independent; wrapping after 24 strands recreates a mild WAR chain.
    let strand_reg = |i: u32| FReg(8 + (i % 24) as u8);
    b.jump(entry, body);

    for g in 0..k.groups {
        // 4d. Figure 3 pattern (paper §2.3): W is a store whose value
        // comes from a long ALU-only chain; the critical load L_t (it
        // feeds the group's chain carrier) hoists above W, so W must
        // check L_t. S_t truly aliases L_t (r11 == r10 at run time) but
        // is never reordered with it (value + must-alias dependences make
        // it critical too, so it executes long before W releases L_t's
        // entry). SMARQ's ordered checking and anti-constraints stay
        // silent; the ALAT's check-everything stores raise a false
        // positive the moment S_t executes.
        if k.alat_fp_pair && g == 0 {
            for _ in 0..5 {
                b.fpu(body, FpuOp::Mul, FReg(5), FReg(5), FReg(3));
            }
            b.fst(body, FReg(5), Reg(11), 8); // W: late value, checker of L_t
            b.fld(body, FReg(0), Reg(10), 0); // L_t (hoists above W)
            b.fpu(body, FpuOp::Mul, FReg(0), FReg(0), FReg(3));
            b.fpu(body, FpuOp::Add, FReg(1), FReg(1), FReg(0)); // critical
            b.fst(body, FReg(0), Reg(11), 0); // S_t: truly aliases L_t
            b.fpu(body, FpuOp::Mul, FReg(0), FReg(0), FReg(3)); // block fwd
            b.fld(body, FReg(4), Reg(11), 0); // must-alias reload
            b.fpu(body, FpuOp::Add, FReg(1), FReg(1), FReg(4)); // critical
        }

        // 1. Late chain (the f1 carrier serializes the groups).
        for _ in 0..k.chain_divs {
            b.fpu(body, FpuOp::Div, FReg(2), FReg(1), FReg(3));
            b.fpu(body, FpuOp::Add, FReg(1), FReg(2), FReg(3));
        }

        // 2. Late stores through r5 (value arrives after the chain).
        for i in 0..k.late_stores {
            let disp = i64::from(g * k.late_stores + i) * 8;
            b.fst(body, FReg(2), Reg(5), disp);
        }

        // 4a. mesa pattern: an early-value store that store-store
        // reordering can hoist above the late stores; a must-alias load
        // consumes it (its value register is clobbered in between, so
        // forwarding cannot remove the load).
        if k.pinned_early_store && g == 0 {
            b.fst(body, FReg(6), Reg(8), 0);
            b.fpu(body, FpuOp::Mul, FReg(6), FReg(6), FReg(3)); // clobber f6
            b.fld(body, FReg(7), Reg(8), 0); // must-alias the early store
            for _ in 0..7 {
                b.fpu(body, FpuOp::Mul, FReg(7), FReg(7), FReg(3));
            }
            b.fst(body, FReg(7), Reg(7), 8 * 62);
        }

        // 3. Independent strands.
        for i in 0..k.strands {
            let disp = i64::from(g * k.strands + i) * 8;
            let t = strand_reg(i);
            if k.true_alias_strand && g == 0 && i == 0 {
                // Truly aliases the late stores at runtime (r9 == r5).
                b.fld(body, t, Reg(9), 0);
            } else {
                b.fld(body, t, Reg(6), disp);
            }
            for _ in 0..k.strand_muls {
                b.fpu(body, FpuOp::Mul, t, t, FReg(3));
            }
            if k.strand_store {
                b.fst(body, t, Reg(7), disp);
            } else {
                b.fpu(body, FpuOp::Add, FReg(7), FReg(7), t);
            }
            if k.true_alias_strand && g == 0 && i == 0 {
                // Keep the truly aliasing strand on the critical path so
                // the scheduler genuinely hoists it (and faults at run
                // time — the rollback/blacklist path).
                b.fpu(body, FpuOp::Add, FReg(1), FReg(1), t);
            }
        }

        // 4b. Redundant load pair: the second load of [r6+..] re-reads
        // across may-alias stores — speculative load elimination.
        if k.redundant_loads && g == 0 {
            b.fld(body, FReg(5), Reg(6), 0);
            b.fpu(body, FpuOp::Add, FReg(7), FReg(7), FReg(5));
        }

        // 4c. Dead store pair: [r8+8] written twice across a may-alias
        // load.
        if k.dead_stores && g == 0 {
            b.fst(body, FReg(2), Reg(8), 8);
            b.fld(body, FReg(5), Reg(7), 0); // may-alias to the analysis
            b.fpu(body, FpuOp::Add, FReg(7), FReg(7), FReg(5));
            b.fst(body, FReg(7), Reg(8), 8);
        }

        // 4e. A store that truly aliases a late store: hoisting it (store
        // reordering) faults at runtime; keeping program order is silent.
        if k.reordered_true_alias_stores && g == 0 {
            b.fst(body, FReg(6), Reg(9), 8);
        }
    }

    // Induction + loop.
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);

    // Consume results so nothing is trivially dead.
    b.fld(done, FReg(0), Reg(7), 0);
    b.halt(done);
    b.finish(entry)
}

fn mk(name: &'static str, description: &'static str, k: Kernel) -> Workload {
    Workload {
        name,
        program: build(&k),
        description,
    }
}

/// The 14 kernel configurations, by name.
fn config_of(name: &str) -> Option<(&'static str, &'static str, Kernel)> {
    all_configs().into_iter().find(|(n, _, _)| *n == name)
}

/// Like [`by_name`], but with the loop trip count overridden — handy for
/// fast correctness tests that still exercise the full pipeline.
pub fn scaled(name: &str, iters: i64) -> Option<Workload> {
    let (n, d, mut k) = config_of(name)?;
    k.iters = iters;
    Some(mk(n, d, k))
}

/// All 14 benchmark workloads, in the paper's order.
pub fn all() -> Vec<Workload> {
    all_configs()
        .into_iter()
        .map(|(n, d, k)| mk(n, d, k))
        .collect()
}

#[allow(clippy::vec_init_then_push)]
fn all_configs() -> Vec<(&'static str, &'static str, Kernel)> {
    vec![
        (
            "wupwise",
            "dense linear algebra: moderate strands, deep FP chains",
            Kernel {
                strands: 4,
                strand_muls: 3,
                chain_divs: 2,
                groups: 2,
                ..Kernel::default()
            },
        ),
        (
            "swim",
            "shallow-water stencil: wide strands, shallow chains",
            Kernel {
                strands: 5,
                late_stores: 4,
                strand_muls: 1,
                groups: 2,
                ..Kernel::default()
            },
        ),
        (
            "mgrid",
            "multigrid stencil: many neighbor loads per point",
            Kernel {
                strands: 6,
                late_stores: 3,
                strand_muls: 2,
                groups: 2,
                ..Kernel::default()
            },
        ),
        (
            "applu",
            "SSOR solver: larger bodies, mixed chains",
            Kernel {
                strands: 6,
                late_stores: 4,
                chain_divs: 2,
                groups: 2,
                alat_fp_pair: true,
                ..Kernel::default()
            },
        ),
        (
            "mesa",
            "3D rasterization: store-reorder-bound pipeline (Figure 16)",
            Kernel {
                strands: 3,
                late_stores: 4,
                chain_divs: 3,
                groups: 1,
                pinned_early_store: true,
                alat_fp_pair: true,
                strand_muls: 1,
                ..Kernel::default()
            },
        ),
        (
            "galgel",
            "Galerkin FEM: redundant loads across may-alias stores",
            Kernel {
                strands: 5,
                groups: 2,
                redundant_loads: true,
                ..Kernel::default()
            },
        ),
        (
            "art",
            "neural net: small superblocks, few memory ops",
            Kernel {
                strands: 2,
                late_stores: 2,
                strand_muls: 1,
                chain_divs: 1,
                groups: 1,
                ..Kernel::default()
            },
        ),
        (
            "equake",
            "earthquake FEM: occasional true pointer aliasing (rollbacks)",
            Kernel {
                strands: 4,
                groups: 2,
                true_alias_strand: true,
                ..Kernel::default()
            },
        ),
        (
            "facerec",
            "face recognition: moderate strands, light chains",
            Kernel {
                strands: 3,
                late_stores: 2,
                strand_muls: 2,
                chain_divs: 1,
                groups: 2,
                ..Kernel::default()
            },
        ),
        (
            "ammp",
            "molecular dynamics: very large superblocks (Figure 14); needs >16 alias registers",
            Kernel {
                strands: 20,
                late_stores: 7,
                chain_divs: 4,
                strand_muls: 3,
                groups: 2,
                iters: 10_000,
                reordered_true_alias_stores: true,
                ..Kernel::default()
            },
        ),
        (
            "lucas",
            "primality FFT: dead stores across may-alias loads",
            Kernel {
                strands: 4,
                groups: 2,
                dead_stores: true,
                ..Kernel::default()
            },
        ),
        (
            "fma3d",
            "crash simulation: elimination-rich bodies",
            Kernel {
                strands: 5,
                groups: 2,
                redundant_loads: true,
                dead_stores: true,
                late_stores: 3,
                ..Kernel::default()
            },
        ),
        (
            "sixtrack",
            "particle tracking: long bodies, many stores",
            Kernel {
                strands: 7,
                late_stores: 4,
                chain_divs: 2,
                strand_muls: 2,
                groups: 2,
                iters: 15_000,
                ..Kernel::default()
            },
        ),
        (
            "apsi",
            "pollution modeling: balanced mix",
            Kernel {
                strands: 5,
                late_stores: 3,
                strand_muls: 2,
                groups: 2,
                alat_fp_pair: true,
                ..Kernel::default()
            },
        ),
    ]
}

/// Looks up one workload by benchmark name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::Interpreter;

    #[test]
    fn all_fourteen_build_and_halt() {
        let ws = all();
        assert_eq!(ws.len(), 14);
        for w in &ws {
            let mut i = Interpreter::new();
            let out = i.run(&w.program, 50_000_000);
            assert_eq!(out, smarq_guest::RunOutcome::Halted, "{} must halt", w.name);
            assert!(i.executed_instrs() > 10_000, "{} is hot enough", w.name);
        }
    }

    #[test]
    fn names_match_the_paper_suite() {
        let ws = all();
        let names: Vec<_> = ws.iter().map(|w| w.name).collect();
        assert_eq!(names.as_slice(), WORKLOAD_NAMES.as_slice());
        assert!(by_name("ammp").is_some());
        assert!(by_name("nosuch").is_none());
    }

    #[test]
    fn ammp_has_much_larger_bodies_than_art() {
        let ammp = by_name("ammp").unwrap();
        let art = by_name("art").unwrap();
        // Compare hot-block sizes (block 1 is the loop body by construction).
        let ammp_body = ammp.program.block(smarq_guest::BlockId(1)).instrs.len();
        let art_body = art.program.block(smarq_guest::BlockId(1)).instrs.len();
        assert!(
            ammp_body > 3 * art_body,
            "ammp {ammp_body} vs art {art_body}"
        );
    }

    #[test]
    fn deterministic_construction() {
        let a = by_name("swim").unwrap();
        let b = by_name("swim").unwrap();
        assert_eq!(a.program, b.program);
    }
}
