//! # smarq-workloads — SPECFP2000 stand-in kernels
//!
//! The paper evaluates on SPECFP2000 binaries, which we cannot ship or run.
//! Following the substitution rule in DESIGN.md, this crate provides one
//! synthetic kernel per benchmark, each shaped to reproduce the
//! *characteristics the paper reports for that benchmark*:
//!
//! * the superblock memory-operation counts of Figure 14 (e.g. `ammp`'s
//!   very large superblocks, `art`'s small ones);
//! * `ammp`'s sensitivity to the alias register count (needs far more than
//!   16 in-flight alias registers);
//! * `mesa`'s sensitivity to store reordering (an early store pinned
//!   behind a late store feeds a must-alias load);
//! * `equake`'s occasional *true* runtime aliasing (exercising rollback +
//!   conservative re-optimization);
//! * load/store-elimination opportunities (`galgel`, `lucas`, `fma3d`)
//!   that produce the paper's extended dependences, anti-constraints and
//!   AMOVs.
//!
//! Every kernel is a counted loop whose body becomes one hot superblock;
//! all speculation is on pairs the simple alias analysis cannot
//! disambiguate (distinct base registers) but that never truly alias —
//! except where a benchmark deliberately aliases to trigger rollbacks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernels;
mod random;
mod scale;

pub use kernels::{all, by_name, scaled, Workload, WORKLOAD_NAMES};
pub use random::{random_workload, random_workload_with, RandomParams};
pub use scale::{scaled_count, scaled_iters, test_scale};
