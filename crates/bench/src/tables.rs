//! The paper's tables, regenerated with executable demonstrations.

use smarq_vliw::{
    AlatHw, AliasAnnot, AliasHardware, EfficeonHw, MachineConfig, MemRange, SmarqQueueHw,
};

/// Table 1: comparison between the HW alias detection schemes. Each cell
/// is backed by an executable demonstration below (and by the unit tests
/// of `smarq_vliw::alias_hw`).
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("Table 1: Comparison between different HW Alias Detections\n");
    out.push_str("----------------------------------------------------------------\n");
    out.push_str("Feature                      Efficeon   Itanium    Order-Based\n");
    out.push_str("Mechanism                    bit-mask   ALAT       ordered queue\n");
    out.push_str(&format!(
        "Scalability                  {:<10} {:<10} {}\n",
        format!("poor ({})", demo_efficeon_limit()),
        "good",
        "good"
    ));
    out.push_str(&format!(
        "False positive               {:<10} {:<10} {}\n",
        demo_efficeon_no_false_positive(),
        demo_alat_false_positive(),
        demo_smarq_no_false_positive(),
    ));
    out.push_str(&format!(
        "Detect alias between stores  {:<10} {:<10} {}\n",
        "yes",
        demo_alat_no_store_store(),
        demo_smarq_store_store(),
    ));
    out
}

/// Efficeon cannot encode more than 15 registers.
fn demo_efficeon_limit() -> String {
    format!("<= {} regs", EfficeonHw::MAX_REGS)
}

/// Efficeon checks only the explicit mask: no false positive.
fn demo_efficeon_no_false_positive() -> &'static str {
    let mut hw = EfficeonHw::new(4);
    hw.mem_access(
        AliasAnnot::Efficeon {
            set: Some(0),
            check_mask: 0,
        },
        MemRange::word(0x100),
        true,
        1,
    )
    .unwrap();
    // An overlapping store with an empty mask stays silent.
    let r = hw.mem_access(
        AliasAnnot::Efficeon {
            set: None,
            check_mask: 0,
        },
        MemRange::word(0x100),
        false,
        2,
    );
    if r.is_ok() {
        "no"
    } else {
        "yes(!)"
    }
}

/// The ALAT store-checks-everything behavior produces false positives.
fn demo_alat_false_positive() -> &'static str {
    let mut hw = AlatHw::new();
    hw.mem_access(
        AliasAnnot::AlatSet { entry: 0 },
        MemRange::word(0x100),
        true,
        1,
    )
    .unwrap();
    // This store never needed to check op 1, yet it faults.
    let r = hw.mem_access(AliasAnnot::None, MemRange::word(0x100), false, 2);
    if r.is_err() {
        "yes"
    } else {
        "no(!)"
    }
}

/// SMARQ checks only at or after the checker's queue order.
fn demo_smarq_no_false_positive() -> &'static str {
    let mut hw = SmarqQueueHw::new(4);
    hw.mem_access(
        AliasAnnot::Smarq {
            p: true,
            c: false,
            offset: 0,
        },
        MemRange::word(0x100),
        true,
        1,
    )
    .unwrap();
    // A checker placed *after* the producer in the queue never sees it.
    let r = hw.mem_access(
        AliasAnnot::Smarq {
            p: false,
            c: true,
            offset: 1,
        },
        MemRange::word(0x100),
        false,
        2,
    );
    if r.is_ok() {
        "no"
    } else {
        "yes(!)"
    }
}

/// ALAT stores never set entries: store-store aliasing is invisible.
fn demo_alat_no_store_store() -> &'static str {
    let mut hw = AlatHw::new();
    hw.mem_access(AliasAnnot::None, MemRange::word(0x100), false, 1)
        .unwrap();
    let r = hw.mem_access(AliasAnnot::None, MemRange::word(0x100), false, 2);
    if r.is_ok() {
        "no"
    } else {
        "yes(!)"
    }
}

/// SMARQ detects reordered aliasing stores.
fn demo_smarq_store_store() -> &'static str {
    let mut hw = SmarqQueueHw::new(4);
    hw.mem_access(
        AliasAnnot::Smarq {
            p: true,
            c: false,
            offset: 0,
        },
        MemRange::word(0x100),
        false, // a hoisted *store* sets a register
        1,
    )
    .unwrap();
    let r = hw.mem_access(
        AliasAnnot::Smarq {
            p: false,
            c: true,
            offset: 0,
        },
        MemRange::word(0x100),
        false,
        2,
    );
    if r.is_err() {
        "yes"
    } else {
        "no(!)"
    }
}

/// Table 2: the VLIW architecture parameters (our documented substitute
/// for the paper's lost Table 2 — see EXPERIMENTS.md).
pub fn table2() -> String {
    let m = MachineConfig::default();
    let mut out = String::new();
    out.push_str("Table 2: VLIW architecture parameters (reproduction substitute)\n");
    out.push_str("---------------------------------------------------------------\n");
    out.push_str(&format!(
        "Issue width                {} ops/bundle ({} mem, {} fpu, {} alu/branch)\n",
        m.issue_width, m.mem_slots, m.fpu_slots, m.alu_slots
    ));
    out.push_str(&format!(
        "Latencies                  int {}, mul {}, div {}, load {}, fp {}, fdiv {}\n",
        m.lat_int, m.lat_mul, m.lat_div, m.lat_load, m.lat_fpu, m.lat_fdiv
    ));
    out.push_str(&format!(
        "Alias registers            {}\n",
        m.num_alias_regs
    ));
    out.push_str(&format!(
        "Atomic regions             checkpoint {} cycles, rollback {} cycles\n",
        m.checkpoint_cycles, m.rollback_cycles
    ));
    out.push_str(&format!(
        "Interpreter                {} cycles per guest instruction\n",
        m.interp_cycles_per_instr
    ));
    out
}

/// Table 3: the optimizations the dynamic optimizer performs.
pub fn table3() -> String {
    let mut out = String::new();
    out.push_str("Table 3: dynamic optimizer passes\n");
    out.push_str("---------------------------------\n");
    out.push_str("superblock formation along hot paths (profile-guided)\n");
    out.push_str("redundant load elimination / store-to-load forwarding (speculative)\n");
    out.push_str("dead store elimination (speculative)\n");
    out.push_str("speculative memory reordering in latency-driven list scheduling\n");
    out.push_str("alias register allocation integrated with scheduling (SMARQ, Fig. 13)\n");
    out.push_str("VLIW bundling for the in-order machine\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_matrix() {
        let t = table1();
        assert!(t.contains("poor (<= 15 regs)"));
        // Itanium column: false positives yes, store-store no.
        assert!(t.contains("no         yes        no"));
        assert!(t.contains("yes        no         yes"));
    }

    #[test]
    fn table2_reports_the_machine() {
        let t = table2();
        assert!(t.contains("Alias registers            64"));
    }

    #[test]
    fn table3_lists_the_passes() {
        assert!(table3().contains("alias register allocation"));
    }
}
