//! The paper's figures, regenerated from an [`Evaluation`] run.

use crate::{bar, EvalConfig, Evaluation};

/// Figure 14: memory operations per superblock (hot region), per benchmark.
pub fn fig14(ev: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str("Figure 14: memory operations per superblock\n");
    out.push_str("-------------------------------------------\n");
    let data: Vec<(&str, f64)> = ev
        .rows
        .iter()
        .map(|r| {
            let m = r
                .hot_region(EvalConfig::Smarq64)
                .map(|reg| reg.opt.mem_ops as f64)
                .unwrap_or(0.0);
            (r.name, m)
        })
        .collect();
    let max = data.iter().map(|d| d.1).fold(0.0, f64::max);
    for (name, m) in &data {
        out.push_str(&format!("{name:>9} {m:6.0}  {}\n", bar(*m, max, 40)));
    }
    let avg = data.iter().map(|d| d.1).sum::<f64>() / data.len() as f64;
    out.push_str(&format!("  average {avg:6.1}\n"));
    out
}

/// Figure 15: speedups over no-alias-hardware for SMARQ, SMARQ16 and the
/// Itanium-like scheme.
pub fn fig15(ev: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str("Figure 15: speedup with different alias detection (vs no alias HW)\n");
    out.push_str("-------------------------------------------------------------------\n");
    out.push_str("benchmark     SMARQ   SMARQ16   Itanium-like\n");
    for r in &ev.rows {
        out.push_str(&format!(
            "{:>9}     {:5.3}   {:5.3}     {:5.3}\n",
            r.name,
            r.speedup(EvalConfig::Smarq64),
            r.speedup(EvalConfig::Smarq16),
            r.speedup(EvalConfig::AlatLike),
        ));
    }
    for c in [
        EvalConfig::Smarq64,
        EvalConfig::Smarq16,
        EvalConfig::AlatLike,
    ] {
        out.push_str(&format!(
            "{:>22}: mean +{:.1}% (geomean +{:.1}%)\n",
            c.name(),
            (ev.mean_speedup(c) - 1.0) * 100.0,
            (ev.geomean_speedup(c) - 1.0) * 100.0,
        ));
    }
    out
}

/// Figure 16: impact of disabling store reordering on SMARQ.
pub fn fig16(ev: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str("Figure 16: impact of store reordering (SMARQ vs SMARQ without it)\n");
    out.push_str("------------------------------------------------------------------\n");
    out.push_str("benchmark    with      without   impact\n");
    let mut impacts = Vec::new();
    for r in &ev.rows {
        let with = r.speedup(EvalConfig::Smarq64);
        let without = r.speedup(EvalConfig::Smarq64NoStoreReorder);
        let impact = (with / without - 1.0) * 100.0;
        impacts.push(impact);
        out.push_str(&format!(
            "{:>9}    {with:5.3}     {without:5.3}     {impact:+5.1}%\n",
            r.name
        ));
    }
    let avg = impacts.iter().sum::<f64>() / impacts.len() as f64;
    out.push_str(&format!("  average impact {avg:+.1}%\n"));
    out
}

/// Figure 17: alias register working set, normalized to the number of
/// memory operations per superblock (= program-order allocation).
pub fn fig17(ev: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str("Figure 17: alias register working set (normalized to memory ops)\n");
    out.push_str("-----------------------------------------------------------------\n");
    out.push_str("benchmark    P-ops/prog-order   SMARQ    lower-bound\n");
    let (mut sp, mut ss, mut sl) = (0.0, 0.0, 0.0);
    let mut n = 0usize;
    for r in &ev.rows {
        let Some(reg) = r.hot_region(EvalConfig::Smarq64) else {
            continue;
        };
        let mem = reg.opt.scheduled_mem_ops.max(1) as f64;
        let p = reg.opt.p_ops as f64 / mem;
        let ws = f64::from(reg.opt.working_set) / mem;
        let lb = f64::from(reg.opt.lower_bound) / mem;
        sp += p;
        ss += ws;
        sl += lb;
        n += 1;
        out.push_str(&format!(
            "{:>9}        {p:5.3}         {ws:5.3}      {lb:5.3}\n",
            r.name
        ));
    }
    let nf = n.max(1) as f64;
    out.push_str(&format!(
        "  average        {:.3}         {:.3}      {:.3}\n",
        sp / nf,
        ss / nf,
        sl / nf
    ));
    out.push_str(&format!(
        "  SMARQ reduces the working set by {:.0}% vs program-order (all ops),\n",
        (1.0 - ss / nf) * 100.0
    ));
    out.push_str(&format!(
        "  and by {:.0}% vs program-order over P-bit ops only.\n",
        (1.0 - (ss / nf) / (sp / nf).max(1e-9)) * 100.0
    ));
    out
}

/// Figure 18: optimization overhead as a fraction of execution time.
pub fn fig18(ev: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str("Figure 18: translation overhead (% of execution time, 1 GHz model)\n");
    out.push_str("-------------------------------------------------------------------\n");
    out.push_str("benchmark    optimization   scheduling\n");
    let (mut so, mut ssch) = (0.0, 0.0);
    for r in &ev.rows {
        let s = r.get(EvalConfig::Smarq64);
        let o = s.optimization_overhead() * 100.0;
        let sc = s.scheduling_overhead() * 100.0;
        so += o;
        ssch += sc;
        out.push_str(&format!("{:>9}      {o:8.4}%     {sc:8.4}%\n", r.name));
    }
    let n = ev.rows.len() as f64;
    out.push_str(&format!(
        "  average      {:8.4}%     {:8.4}%\n",
        so / n,
        ssch / n
    ));
    out
}

/// Figure 19: constraints per memory operation, plus AMOV statistics.
pub fn fig19(ev: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str("Figure 19: number of constraints (per scheduled memory op)\n");
    out.push_str("-----------------------------------------------------------\n");
    out.push_str("benchmark    check/op   anti/op   AMOVs   AMOV-moves\n");
    let (mut sc, mut sa) = (0.0, 0.0);
    let mut n = 0usize;
    for r in &ev.rows {
        let Some(reg) = r.hot_region(EvalConfig::Smarq64) else {
            continue;
        };
        let mem = reg.opt.scheduled_mem_ops.max(1) as f64;
        let c = reg.opt.checks as f64 / mem;
        let a = reg.opt.antis as f64 / mem;
        sc += c;
        sa += a;
        n += 1;
        out.push_str(&format!(
            "{:>9}      {c:5.2}      {a:5.2}    {:4}      {:4}\n",
            r.name, reg.opt.amovs, reg.opt.amov_moves
        ));
    }
    let nf = n.max(1) as f64;
    out.push_str(&format!(
        "  average      {:5.2}      {:5.2}\n",
        sc / nf,
        sa / nf
    ));
    out
}

/// Sensitivity study: how the SMARQ speedup responds to machine
/// parameters (issue width, load latency, rollback penalty). Not a paper
/// figure — it demonstrates that the reproduction's conclusions are not an
/// artifact of one machine configuration.
pub fn sensitivity() -> String {
    use smarq_runtime::{DynOptSystem, SystemConfig};
    use smarq_vliw::MachineConfig;

    let mut out = String::new();
    out.push_str(
        "Sensitivity: SMARQ speedup vs machine parameters (swim / ammp)
",
    );
    out.push_str(
        "----------------------------------------------------------------
",
    );
    let run = |name: &str, machine: MachineConfig| -> (f64, f64) {
        let speedup = |wname: &str| {
            let w = smarq_workloads::scaled(wname, 4_000).unwrap();
            let cycles = |opt: smarq_opt::OptConfig| {
                let mut cfg = SystemConfig::with_opt(opt);
                cfg.machine = machine;
                let mut sys = DynOptSystem::new(w.program.clone(), cfg);
                sys.run_to_completion(u64::MAX);
                sys.stats().total_cycles()
            };
            cycles(smarq_opt::OptConfig::no_alias_hw()) as f64
                / cycles(smarq_opt::OptConfig::smarq(64)) as f64
        };
        let _ = name;
        (speedup("swim"), speedup("ammp"))
    };

    let base = MachineConfig::default();
    let variants: Vec<(String, MachineConfig)> = vec![
        ("default (8-issue, load 4)".into(), base),
        (
            "4-issue (1 mem, 1 fpu, 2 alu)".into(),
            MachineConfig {
                issue_width: 4,
                mem_slots: 1,
                fpu_slots: 1,
                alu_slots: 2,
                ..base
            },
        ),
        (
            "load latency 2".into(),
            MachineConfig {
                lat_load: 2,
                ..base
            },
        ),
        (
            "load latency 8".into(),
            MachineConfig {
                lat_load: 8,
                ..base
            },
        ),
        (
            "rollback 1000 cycles".into(),
            MachineConfig {
                rollback_cycles: 1000,
                ..base
            },
        ),
        (
            "16 KiB L1 D-cache (hit 4, miss 24)".into(),
            MachineConfig {
                dcache: Some(smarq_vliw::CacheParams::default()),
                ..base
            },
        ),
    ];
    for (name, m) in variants {
        let (swim, ammp) = run(&name, m);
        out.push_str(&format!(
            "{name:32} swim {swim:5.3}   ammp {ammp:5.3}
"
        ));
    }
    out
}

/// Ablation report: the design-choice experiments DESIGN.md calls out.
pub fn ablations(ev: &Evaluation) -> String {
    use smarq::baseline::{program_order_allocate, BaselineOptions, BaselineScope};
    use smarq::DepGraph;

    let mut out = String::new();
    out.push_str("Ablations\n");
    out.push_str("---------\n");

    // Rotation ablation on a representative synthetic region: serialized
    // hoist pairs (paper §3.2's argument for rotation).
    let mut region = smarq::RegionSpec::new();
    let mut sched = Vec::new();
    for i in 0..16u32 {
        let st = region.push(smarq::MemKind::Store, 2 * i);
        let ld = region.push(smarq::MemKind::Load, 2 * i + 1);
        region.set_may_alias(st, ld, true);
        sched.push((st, ld));
    }
    let schedule: Vec<_> = sched.iter().flat_map(|&(s, l)| [l, s]).collect();
    let deps = DepGraph::compute(&region);
    let no_rot = program_order_allocate(
        &region,
        &deps,
        &schedule,
        u32::MAX,
        BaselineOptions {
            scope: BaselineScope::POnly,
            rotate: false,
        },
    )
    .unwrap();
    let rot = program_order_allocate(
        &region,
        &deps,
        &schedule,
        u32::MAX,
        BaselineOptions {
            scope: BaselineScope::POnly,
            rotate: true,
        },
    )
    .unwrap();
    let smarq_ws = smarq::allocate(&region, &deps, &schedule, u32::MAX)
        .unwrap()
        .working_set();
    out.push_str(&format!(
        "rotation (16 serialized hoists): without {} regs, with {} regs, SMARQ {} regs\n",
        no_rot.working_set(),
        rot.working_set(),
        smarq_ws
    ));

    // Speculative-elimination ablation: how much of the SMARQ win comes
    // from eliminations (the feature that *requires* AMOV/anti machinery).
    let mut with_sum = 0.0;
    let mut n = 0;
    for r in &ev.rows {
        let reg = match r.hot_region(EvalConfig::Smarq64) {
            Some(x) => x,
            None => continue,
        };
        if reg.opt.spec_load_elims + reg.opt.spec_store_elims > 0 {
            with_sum += r.speedup(EvalConfig::Smarq64);
            n += 1;
        }
    }
    out.push_str(&format!(
        "speculative eliminations active in {n} benchmarks (mean SMARQ speedup there {:.3})\n",
        if n > 0 { with_sum / n as f64 } else { 0.0 }
    ));

    // AMOV usage across the suite.
    let (mut amovs, mut moves) = (0usize, 0usize);
    for r in &ev.rows {
        if let Some(reg) = r.hot_region(EvalConfig::Smarq64) {
            amovs += reg.opt.amovs;
            moves += reg.opt.amov_moves;
        }
    }
    out.push_str(&format!(
        "AMOVs inserted across hot regions: {amovs} total, {moves} real moves, {} clean-ups\n",
        amovs - moves
    ));

    // Energy proxy (paper §2.4): alias entries examined per executed
    // memory operation, per scheme. The ordered queue with P/C bits scans
    // only what the constraints require; the ALAT's stores scan every
    // live entry.
    out.push_str("alias entries examined per memory op (energy proxy):\n");
    for c in [EvalConfig::Smarq64, EvalConfig::AlatLike] {
        let avg = ev
            .rows
            .iter()
            .map(|r| r.get(c).scans_per_mem_op())
            .sum::<f64>()
            / ev.rows.len() as f64;
        out.push_str(&format!("  {:<14} {avg:6.3}\n", c.name()));
    }

    // Region-size scaling (paper §2.2): unrolling grows regions, and
    // larger regions widen the gap between 16 and 64 alias registers.
    {
        use smarq_runtime::{DynOptSystem, SystemConfig};
        let w = smarq_workloads::scaled("ammp", 3_000).unwrap();
        let cycles = |regs: u32, unroll: u32| {
            let mut cfg = SystemConfig::with_opt(smarq_opt::OptConfig::smarq(regs));
            cfg.unroll_factor = unroll;
            let mut sys = DynOptSystem::new(w.program.clone(), cfg);
            sys.run_to_completion(u64::MAX);
            sys.stats().total_cycles() as f64
        };
        for unroll in [1u32, 3] {
            let gap = cycles(16, unroll) / cycles(64, unroll);
            out.push_str(&format!(
                "region scaling (ammp, unroll x{unroll}): 64 regs beat 16 regs by {:+.1}%\n",
                (gap - 1.0) * 100.0
            ));
        }
    }

    // AMOV mechanism on the canonical cyclic-constraint region (paper
    // Figures 9/12): one run with an unscheduled checker remaining (the
    // AMOV must relocate the range) and one without (pure clean-up, the
    // paper's common case).
    for (label, second_checker) in [("clean-up", false), ("relocation", true)] {
        let (region, schedule) = cyclic_region(second_checker);
        let deps = DepGraph::compute(&region);
        let alloc = smarq::allocate(&region, &deps, &schedule, u32::MAX).unwrap();
        smarq::validate::validate_allocation(&region, &deps, &schedule, &alloc).unwrap();
        out.push_str(&format!(
            "cyclic region ({label}): {} AMOV(s), {} relocation(s), validated\n",
            alloc.stats().amovs,
            alloc.stats().amov_moves
        ));
    }
    out
}

/// The Figure 9/12 cyclic-constraint shape (see `crates/core` tests).
fn cyclic_region(with_second_checker: bool) -> (smarq::RegionSpec, Vec<smarq::MemOpId>) {
    use smarq::MemKind;
    let mut r = smarq::RegionSpec::new();
    let c1 = r.push(MemKind::Store, 0);
    let s = r.push(MemKind::Store, 1);
    let s2 = with_second_checker.then(|| r.push(MemKind::Store, 2));
    let x = r.push(MemKind::Load, 3);
    let v = r.push(MemKind::Store, 4);
    let z2 = r.push(MemKind::Load, 3);
    let y = r.push(MemKind::Store, 5);
    let z1 = r.push(MemKind::Load, 0);
    r.set_may_alias(c1, x, true);
    r.set_may_alias(s, x, true);
    r.set_may_alias(x, v, true);
    r.set_may_alias(v, z2, true);
    r.set_may_alias(y, c1, true);
    r.set_may_alias(y, z1, true);
    r.set_may_alias(x, y, true);
    r.set_may_alias(s, z2, false);
    r.set_may_alias(c1, z2, false);
    r.set_may_alias(y, z2, false);
    if let Some(s2) = s2 {
        r.set_may_alias(s2, x, true);
        r.set_may_alias(s2, z2, false);
        for other in [c1, s, v, y] {
            r.set_may_alias(s2, other, false);
        }
    }
    r.add_load_elim(x, z2);
    r.add_load_elim(c1, z1);
    let mut schedule = vec![c1, v, x, s, y];
    if let Some(s2) = s2 {
        schedule.push(s2);
    }
    (r, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchmarkRow;

    fn mini_eval() -> Evaluation {
        // Two benchmarks are enough to exercise the formatting paths.
        let rows = ["art", "swim"]
            .iter()
            .map(|name| {
                let w = smarq_workloads::by_name(name).unwrap();
                BenchmarkRow {
                    name: w.name,
                    stats: EvalConfig::ALL
                        .iter()
                        .map(|&c| crate::run_workload(&w, c))
                        .collect(),
                }
            })
            .collect();
        Evaluation { rows }
    }

    #[test]
    fn figures_render() {
        let ev = mini_eval();
        for f in [
            fig14(&ev),
            fig15(&ev),
            fig16(&ev),
            fig17(&ev),
            fig18(&ev),
            fig19(&ev),
            ablations(&ev),
        ] {
            assert!(f.contains('\n'));
            assert!(f.len() > 50);
        }
    }
}
