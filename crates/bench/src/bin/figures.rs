//! Regenerates every table and figure of the SMARQ paper's evaluation.
//!
//! Usage: `figures [table1|table2|table3|fig14|fig15|fig16|fig17|fig18|fig19|ablations|all]`
//! (default: `all`).

use smarq_bench::{figures, tables, Evaluation};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let needs_eval = !matches!(arg.as_str(), "table1" | "table2" | "table3" | "sensitivity");
    let ev = if needs_eval {
        eprintln!("running 14 benchmarks x 5 configurations ...");
        Some(Evaluation::run())
    } else {
        None
    };
    let ev = ev.as_ref();

    let sections: Vec<(&str, String)> = vec![
        ("table1", tables::table1()),
        ("table2", tables::table2()),
        ("table3", tables::table3()),
        ("fig14", ev.map(figures::fig14).unwrap_or_default()),
        ("fig15", ev.map(figures::fig15).unwrap_or_default()),
        ("fig16", ev.map(figures::fig16).unwrap_or_default()),
        ("fig17", ev.map(figures::fig17).unwrap_or_default()),
        ("fig18", ev.map(figures::fig18).unwrap_or_default()),
        ("fig19", ev.map(figures::fig19).unwrap_or_default()),
        ("ablations", ev.map(figures::ablations).unwrap_or_default()),
        (
            "sensitivity",
            if arg == "sensitivity" || arg == "all" {
                figures::sensitivity()
            } else {
                String::new()
            },
        ),
    ];

    let mut printed = false;
    for (name, text) in &sections {
        if arg == "all" || arg == *name {
            println!("{text}");
            printed = true;
        }
    }
    if !printed {
        eprintln!("unknown section '{arg}'");
        eprintln!("sections: table1 table2 table3 fig14..fig19 ablations sensitivity all");
        std::process::exit(2);
    }
}
