//! Regenerates every table and figure of the SMARQ paper's evaluation.
//!
//! Usage: `figures [table1|table2|table3|fig14|fig15|fig16|fig17|fig18|fig19|ablations|all]`
//! (default: `all`).
//!
//! `figures bench-json [OUT.json]` instead runs the before/after perf
//! comparisons (see `smarq_bench::perf`), the serial-vs-parallel
//! evaluation sweep and the multi-guest scaling benchmark, and writes the
//! JSON baseline (default `BENCH_PR9.json`). The convention: a PR
//! claiming performance work commits the file this prints, named
//! `BENCH_PR<n>.json`.

use smarq_bench::{bench_multi_guest, figures, perf, tables, Evaluation};

fn bench_json(out_path: &str) {
    eprintln!("running before/after comparisons ...");
    // Report each comparison as it finishes: on a slow host the full set
    // takes a while, and a silent multi-minute gap is indistinguishable
    // from a hang.
    type ComparisonFn = fn() -> smarq_bench::harness::Comparison;
    let parts: [(&str, ComparisonFn); 8] = [
        ("constraint_analysis", perf::compare_constraint_analysis),
        ("allocator", perf::compare_allocator),
        ("mem_access_dense", perf::compare_mem_access_dense),
        ("mem_access_sparse", perf::compare_mem_access_sparse),
        ("dispatch", perf::compare_dispatch),
        ("exec_tier", perf::compare_exec_tier),
        ("exec_tier_mem", perf::compare_exec_tier_mem),
        ("async_translate", perf::compare_async_translate),
    ];
    let mut comparisons = Vec::with_capacity(parts.len());
    for (name, run) in parts {
        eprintln!("[bench] {name} ...");
        let c = run();
        eprintln!("{}", c.report());
        comparisons.push(c);
    }
    eprintln!("measuring absolute simulator + validator + analyzer throughput ...");
    let (analyzer_region, analyzer_chain) = perf::measure_analyzer();
    let absolutes = vec![
        perf::measure_simulator_region(),
        perf::measure_validator_regions(),
        analyzer_region,
        analyzer_chain,
    ];
    for m in &absolutes {
        eprintln!("{}", m.line());
    }
    eprintln!("timing the evaluation sweep (serial, then parallel) ...");
    let sweep = perf::time_eval_sweep();
    if sweep.degenerate {
        eprintln!(
            "sweep: serial {:.2}s; single hardware thread, parallel run \
             skipped (degenerate)",
            sweep.serial_s
        );
    } else {
        eprintln!(
            "sweep: serial {:.2}s, parallel {:.2}s on {} threads ({:.2}x)",
            sweep.serial_s,
            sweep.parallel_s,
            sweep.threads,
            sweep.speedup()
        );
    }
    eprintln!("running the multi-guest scaling benchmark ...");
    let multi = bench_multi_guest();
    for r in &multi.rows {
        eprintln!(
            "multiguest: {} threads  {:.2}s [{:.2}..{:.2}]  {:.2} guest-programs/s  {:.2}M guest-instrs/s",
            r.threads,
            r.wall_s,
            r.wall_min_s,
            r.wall_max_s,
            r.guest_programs_per_s,
            r.guest_instrs_per_s / 1.0e6
        );
    }
    match multi.scaling_speedup() {
        Some(s) => eprintln!(
            "multiguest: {:.2}x from 1 -> {} threads; shared cache translated {} regions vs {} private",
            s,
            multi.rows.last().map_or(1, |r| r.threads),
            multi.shared_translations,
            multi.private_translations
        ),
        None => eprintln!(
            "multiguest: single hardware thread, scaling rows skipped (degenerate); \
             shared cache translated {} regions vs {} private",
            multi.shared_translations, multi.private_translations
        ),
    }
    let json = perf::to_json(&comparisons, &absolutes, Some(&sweep), Some(&multi));
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if arg == "bench-json" {
        let out = std::env::args()
            .nth(2)
            .unwrap_or_else(|| "BENCH_PR9.json".into());
        bench_json(&out);
        return;
    }
    let needs_eval = !matches!(arg.as_str(), "table1" | "table2" | "table3" | "sensitivity");
    let ev = if needs_eval {
        eprintln!("running 14 benchmarks x 5 configurations ...");
        Some(Evaluation::run())
    } else {
        None
    };
    let ev = ev.as_ref();

    let sections: Vec<(&str, String)> = vec![
        ("table1", tables::table1()),
        ("table2", tables::table2()),
        ("table3", tables::table3()),
        ("fig14", ev.map(figures::fig14).unwrap_or_default()),
        ("fig15", ev.map(figures::fig15).unwrap_or_default()),
        ("fig16", ev.map(figures::fig16).unwrap_or_default()),
        ("fig17", ev.map(figures::fig17).unwrap_or_default()),
        ("fig18", ev.map(figures::fig18).unwrap_or_default()),
        ("fig19", ev.map(figures::fig19).unwrap_or_default()),
        ("ablations", ev.map(figures::ablations).unwrap_or_default()),
        (
            "sensitivity",
            if arg == "sensitivity" || arg == "all" {
                figures::sensitivity()
            } else {
                String::new()
            },
        ),
    ];

    let mut printed = false;
    for (name, text) in &sections {
        if arg == "all" || arg == *name {
            println!("{text}");
            printed = true;
        }
    }
    if !printed {
        eprintln!("unknown section '{arg}'");
        eprintln!("sections: table1 table2 table3 fig14..fig19 ablations sensitivity all");
        eprintln!("perf baseline: bench-json [OUT.json]");
        std::process::exit(2);
    }
}
