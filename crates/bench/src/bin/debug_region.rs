use smarq_opt::OptConfig;
use smarq_runtime::{DynOptSystem, SystemConfig};

fn main() {
    for (label, opt) in [
        ("smarq64", OptConfig::smarq(64)),
        ("smarq16", OptConfig::smarq(16)),
        ("no-st-reorder", OptConfig::smarq_no_store_reorder(64)),
    ] {
        for name in ["ammp", "mesa"] {
            let w = smarq_workloads::scaled(name, 3000).unwrap();
            let mut sys = DynOptSystem::new(w.program.clone(), SystemConfig::with_opt(opt.clone()));
            sys.run_to_completion(u64::MAX);
            let s = sys.stats();
            let r = s.per_region.iter().max_by_key(|r| r.entries).unwrap();
            println!("{name:5} {label:14} cycles={:>8} rb={} retries={} ws={} checks={} antis={} amovs={} p={} mem={}",
                s.total_cycles(), s.rollbacks, r.opt.overflow_retries, r.opt.working_set,
                r.opt.checks, r.opt.antis, r.opt.amovs, r.opt.p_ops, r.opt.scheduled_mem_ops);
        }
    }
}
