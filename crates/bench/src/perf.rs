//! Before/after performance comparisons for the tracked perf trajectory.
//!
//! Each comparison times the *retained reference implementation* and the
//! fast path it replaced **in the same process run**, so the reported
//! speedups are apples-to-apples on the machine that produced them. The
//! `figures -- bench-json` mode serializes the results to a `BENCH_PR<n>.json`
//! file at the repository root; each PR that claims a performance win
//! commits one so the trajectory is reviewable.

use crate::harness::{time_fn, Comparison, Measurement};
use crate::synth::hoist_region;
use crate::Evaluation;
use smarq::queue::AliasQueue;
use smarq::{allocate, AllocScratch, Allocator, DepGraph};
use smarq_guest::Program;
use smarq_guest::{AluOp, BlockId, CmpOp, Interpreter, Memory, ProgramBuilder, Reg};
use smarq_ir::{form_superblock, FormationParams};
use smarq_opt::{
    optimize_superblock, optimize_superblock_traced, AliasBlacklist, OptConfig, OptTrace,
};
use smarq_runtime::{DispatchMode, DynOptSystem, ExecTier, SystemConfig};
use smarq_vliw::{AnyAliasHw, HwKind, MachineConfig, Simulator, VliwState};
use std::time::Instant;

/// Dependence + constraint analysis: the all-pairs reference
/// ([`DepGraph::compute_naive`]) vs the sealed-region bit-matrix path
/// ([`DepGraph::compute`]).
pub fn compare_constraint_analysis() -> Comparison {
    let (region, _, _) = hoist_region(256);
    let before = time_fn("constraint_analysis/naive_all_pairs", || {
        DepGraph::compute_naive(&region)
    });
    let after = time_fn("constraint_analysis/sealed_bit_matrix", || {
        DepGraph::compute(&region)
    });
    Comparison {
        name: "constraint_analysis".into(),
        before,
        after,
    }
}

/// Allocator over a fixed schedule: a fresh [`Allocator`] per region vs
/// recycling one [`AllocScratch`] across regions (the runtime's usage).
pub fn compare_allocator() -> Comparison {
    let (region, deps, schedule) = hoist_region(64);
    let before = time_fn("allocator/fresh_buffers", || {
        allocate(&region, &deps, &schedule, u32::MAX)
            .unwrap()
            .working_set()
    });
    let mut scratch = Some(AllocScratch::new());
    let after = time_fn("allocator/scratch_reuse", move || {
        let mut a = Allocator::with_scratch(&region, &deps, u32::MAX, scratch.take().unwrap());
        for &op in &schedule {
            a.schedule_op(op).unwrap();
        }
        let (alloc, s) = a.finish_reclaim().unwrap();
        scratch = Some(s);
        alloc.working_set()
    });
    Comparison {
        name: "allocator".into(),
        before,
        after,
    }
}

/// A 64-register queue with most slots occupied — the steady state of a
/// region whose hoisted loads have not rotated out yet.
fn dense_queue() -> AliasQueue<(u64, u64)> {
    let mut q = AliasQueue::new(64);
    for off in 0..56u32 {
        let lo = off as u64 * 16;
        q.set(off, (lo, lo + 8), off % 3 == 0).unwrap();
    }
    q
}

/// A 512-register file with only a handful of live entries — the common
/// case right after a rotation drained the window.
fn sparse_queue() -> AliasQueue<(u64, u64)> {
    let mut q = AliasQueue::new(512);
    for off in [13u32, 200, 400, 490] {
        let lo = off as u64 * 16;
        q.set(off, (lo, lo + 8), false).unwrap();
    }
    q
}

/// The simulator's C-bit path on a dense queue where the access conflicts
/// with every live entry: the old path collected **all** hits into a `Vec`
/// and took the first; [`AliasQueue::check_first`] short-circuits.
pub fn compare_mem_access_dense() -> Comparison {
    let q = dense_queue();
    // A probe range overlapping every entry, black-boxed so the overlap
    // test cannot be constant-folded away.
    let probe = (0u64, u64::MAX);
    let before = time_fn("sim_mem_access/dense_full_scan", || {
        let p = std::hint::black_box(probe);
        q.check(0, false, |&(lo, hi)| lo < p.1 && p.0 < hi)
            .unwrap()
            .first()
            .copied()
    });
    let q = dense_queue();
    let after = time_fn("sim_mem_access/dense_first_hit", || {
        let p = std::hint::black_box(probe);
        q.check_first(0, false, |&(lo, hi)| lo < p.1 && p.0 < hi)
            .unwrap()
    });
    Comparison {
        name: "sim_mem_access_dense".into(),
        before,
        after,
    }
}

/// The same path on a sparse queue with no conflict: the old path
/// inspected every slot; the bitmask scan visits only occupied words.
pub fn compare_mem_access_sparse() -> Comparison {
    let q = sparse_queue();
    // A probe range beyond every entry (no hit), black-boxed so the scan
    // cannot be folded away.
    let probe = (u64::MAX - 16, u64::MAX - 8);
    let before = time_fn("sim_mem_access/sparse_full_scan", || {
        let p = std::hint::black_box(probe);
        q.check(0, false, |&(lo, hi)| lo < p.1 && p.0 < hi)
            .unwrap()
            .first()
            .copied()
    });
    let q = sparse_queue();
    let after = time_fn("sim_mem_access/sparse_first_hit", || {
        let p = std::hint::black_box(probe);
        q.check_first(0, false, |&(lo, hi)| lo < p.1 && p.0 < hi)
            .unwrap()
    });
    Comparison {
        name: "sim_mem_access_sparse".into(),
        before,
        after,
    }
}

/// End-to-end dispatch overhead on a region-chained hot loop: the seed's
/// naive dispatcher (per-entry hashmap probe, full guest marshal both
/// ways, full-state checkpoint clone, per-block stat sync) vs the chained
/// dispatcher (flat cache, memoized region→region links followed in a
/// tight loop, resident guest state, write-masked checkpoints, batched
/// stat sync).
///
/// Both systems run the same effectively-infinite counted loop with a
/// load/store pair. Each is warmed until the loop is translated, then
/// timed on identical incremental budget slices of steady-state
/// execution, so one timed iteration is exactly [`DISPATCH_STEP`] guest
/// instructions dominated by region entries.
pub fn compare_dispatch() -> Comparison {
    /// Guest instructions per timed closure call.
    const DISPATCH_STEP: u64 = 20_000;
    const WARM: u64 = 100_000;

    fn warm(mode: DispatchMode) -> DynOptSystem {
        // Register-only tiny loop: the per-iteration work is two guest
        // instructions, so the measurement is dominated by dispatch
        // (lookup, marshal, chaining) rather than by memory simulation.
        let cfg = SystemConfig {
            hot_threshold: 50,
            dispatch: mode,
            exec_tier: ExecTier::CycleSim,
            ..Default::default()
        };
        let mut sys = DynOptSystem::new(reg_loop_kernel(), cfg);
        sys.run_to_completion(WARM);
        assert!(
            sys.stats().regions_formed >= 1,
            "hot loop must be translated before timing"
        );
        sys
    }

    let mut naive = warm(DispatchMode::Naive);
    let mut budget = WARM;
    let before = time_fn("dispatch/naive_hashmap_marshal", move || {
        budget += DISPATCH_STEP;
        naive.run_to_completion(budget)
    });

    let mut chained = warm(DispatchMode::Chained);
    budget = WARM + DISPATCH_STEP;
    // Prove the fast path is engaged before timing it.
    chained.run_to_completion(budget);
    assert!(
        chained.stats().chain_follows > 0,
        "chained system must follow region links in steady state"
    );
    let after = time_fn("dispatch/chained_resident", move || {
        budget += DISPATCH_STEP;
        chained.run_to_completion(budget)
    });

    Comparison {
        name: "dispatch".into(),
        before,
        after,
    }
}

/// The dispatch-bound hot-loop kernel of [`compare_dispatch`]: two guest
/// instructions per iteration, no memory traffic.
fn reg_loop_kernel() -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), i64::MAX);
    b.jump(entry, body);
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    b.finish(entry)
}

/// A memory-bound hot-loop kernel: a load/store pair through the same
/// address plus the induction update, so the translated region carries
/// alias annotations and the functional tier's inlined bitmask queue
/// checks are on the timed path.
fn mem_loop_kernel() -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), i64::MAX);
    b.iconst(entry, Reg(3), 0x1000);
    b.jump(entry, body);
    b.ld(body, Reg(4), Reg(3), 0);
    b.alu(body, AluOp::Add, Reg(4), Reg(4), Reg(1));
    b.st(body, Reg(4), Reg(3), 0);
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    b.finish(entry)
}

/// End-to-end guest execution under the chained **cycle simulator**
/// (scoreboard, issue modeling, per-bundle timing) vs the same program
/// under the fast **functional tier** (direct-threaded ops over a compact
/// [`FastState`], default 1-in-256 tier-down sampling kept on so the
/// timed number reflects the deployed configuration). Both systems warm
/// until the loop is translated and chained, then identical steady-state
/// budget slices are timed — one iteration is exactly `step` guest
/// instructions.
fn compare_tiers(
    name: &str,
    before_label: &str,
    after_label: &str,
    kernel: fn() -> Program,
) -> Comparison {
    /// Guest instructions per timed closure call.
    const STEP: u64 = 20_000;
    const WARM: u64 = 100_000;

    fn warm(kernel: fn() -> Program, tier: ExecTier) -> DynOptSystem {
        let cfg = SystemConfig {
            hot_threshold: 50,
            dispatch: DispatchMode::Chained,
            exec_tier: tier,
            // Unroll the hot loop so the region carries real straight-line
            // work: with a 2-op region body both tiers are dominated by
            // the same per-entry chain bookkeeping and the comparison
            // measures dispatch, not execution. Unrolled regions are also
            // the deployed shape — the optimizer exists to form them.
            unroll_factor: 16,
            ..Default::default()
        };
        let mut sys = DynOptSystem::new(kernel(), cfg);
        sys.run_to_completion(WARM);
        assert!(
            sys.stats().regions_formed >= 1,
            "hot loop must be translated before timing"
        );
        sys
    }

    let mut cycle = warm(kernel, ExecTier::CycleSim);
    let mut budget = WARM;
    let before = time_fn(before_label, move || {
        budget += STEP;
        cycle.run_to_completion(budget)
    });

    let mut fast = warm(kernel, ExecTier::Functional);
    budget = WARM + STEP;
    // Prove the functional tier is engaged before timing it.
    fast.run_to_completion(budget);
    assert!(
        fast.stats().tier_fast_entries > 0,
        "functional tier must run regions in steady state"
    );
    let after = time_fn(after_label, move || {
        budget += STEP;
        fast.run_to_completion(budget)
    });

    Comparison {
        name: name.into(),
        before,
        after,
    }
}

/// [`compare_tiers`] on the register-only dispatch kernel: isolates the
/// per-region overhead difference (no scoreboard, no cycle accounting, no
/// VLIW state marshal).
pub fn compare_exec_tier() -> Comparison {
    compare_tiers(
        "exec_tier",
        "exec_tier/chained_cycle_sim",
        "exec_tier/functional",
        reg_loop_kernel,
    )
}

/// [`compare_tiers`] on the load/store hot loop: the per-memory-op cost
/// difference (inlined bitmask queue check + direct memory access vs the
/// cycle simulator's modeled memory pipeline).
pub fn compare_exec_tier_mem() -> Comparison {
    compare_tiers(
        "exec_tier_mem",
        "exec_tier/mem_chained_cycle_sim",
        "exec_tier/mem_functional",
        mem_loop_kernel,
    )
}

/// A translation-heavy kernel: `loops` distinct counted loops run in
/// sequence, each hot enough to be translated — so a run performs many
/// independent region formations + optimizations, which is the work the
/// async pipeline moves off the guest's critical path.
fn many_loops_kernel(loops: usize, iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    // Each loop gets a preheader that resets the induction variable:
    // the reset must NOT live at the top of the looping block itself,
    // because the back edge re-executes the whole block and the loop
    // would never terminate.
    let pres: Vec<BlockId> = (0..loops).map(|_| b.block()).collect();
    let bodies: Vec<BlockId> = (0..loops).map(|_| b.block()).collect();
    let done = b.block();
    b.iconst(entry, Reg(2), iters);
    b.iconst(entry, Reg(3), 0x1000);
    b.jump(entry, pres[0]);
    for (i, &body) in bodies.iter().enumerate() {
        let next = pres.get(i + 1).copied().unwrap_or(done);
        b.iconst(pres[i], Reg(1), 0);
        b.jump(pres[i], body);
        // Each loop gets its own memory op mix so the formed regions are
        // genuinely distinct translations, not copies.
        b.ld(body, Reg(4), Reg(3), (i as i64 % 7) * 8);
        b.alu(body, AluOp::Add, Reg(4), Reg(4), Reg(1));
        b.st(body, Reg(4), Reg(3), (i as i64 % 5) * 8);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, next);
    }
    b.halt(done);
    b.finish(entry)
}

/// Translation stalls on the guest's critical path: inline translation
/// (the dispatch loop stops and runs formation + optimization + install
/// synchronously, `translation_ns`) vs the async pipeline (the dispatch
/// loop only enqueues a snapshot and later links in the finished region;
/// its entire critical-path cost is `async_stall_ns`). Both numbers are
/// reported per translation actually produced, from one end-to-end run
/// each of the same translation-heavy multi-loop kernel.
///
/// This is not a closure-timing microbench: the system's own monotonic
/// accounting *is* the measurement, so the comparison captures exactly
/// the stall the guest would observe (and `speedup` is the stall-removal
/// factor the async pipeline buys). The background worker's time is
/// still spent — `stall_cycles_avoided()` reports it — just no longer in
/// front of guest progress.
pub fn compare_async_translate() -> Comparison {
    let program = many_loops_kernel(24, 2_000);

    // Inline: every translation stalls the dispatch loop. Hot loops are
    // unrolled so each translation job carries a realistic optimization
    // payload (scheduling + allocation cost grows with region size); the
    // async path's enqueue + publish bookkeeping does not.
    let mut cfg = SystemConfig {
        hot_threshold: 50,
        dispatch: DispatchMode::Chained,
        ..Default::default()
    };
    cfg.unroll_factor = 8;
    cfg.async_translate = false;
    let mut inline_sys = DynOptSystem::new(program.clone(), cfg.clone());
    inline_sys.run_to_completion(u64::MAX);
    let s = inline_sys.stats();
    let inline_jobs = (s.regions_formed + s.retranslations).max(1) as u64;
    assert!(
        s.regions_formed >= 16,
        "kernel must be translation-heavy, formed only {}",
        s.regions_formed
    );
    let before = Measurement::single(
        "async_translate/inline_stall",
        s.translation_ns as f64 / inline_jobs as f64,
        inline_jobs,
    );

    // Async: the critical path only pays the enqueue and the publish
    // link-in. The deterministic in-thread stepper (`translate_workers =
    // 0`) stands in for the worker pool: on a single-core host a real
    // worker thread preempts the execution thread inside the stall
    // timers, so the measured "stall" would absorb slices of the
    // worker's own translation time and say nothing about the
    // bookkeeping cost the exec thread actually pays.
    cfg.async_translate = true;
    cfg.translate_workers = 0;
    cfg.translate_queue_depth = 8;
    let mut async_sys = DynOptSystem::new(program, cfg);
    async_sys.run_to_completion(u64::MAX);
    async_sys.translation_drain();
    let s = async_sys.stats();
    assert_eq!(s.translation_ns, 0, "async mode must not translate inline");
    assert!(s.async_published >= 1, "async run must publish regions");
    let after = Measurement::single(
        "async_translate/queue_publish",
        s.async_stall_ns as f64 / s.async_enqueued.max(1) as f64,
        s.async_enqueued.max(1),
    );

    Comparison {
        name: "async_translate".into(),
        before,
        after,
    }
}

/// Absolute cycle-level simulator throughput on a real translated region
/// (no before/after — an absolute trajectory point).
pub fn measure_simulator_region() -> Measurement {
    let w = smarq_workloads::by_name("ammp").unwrap();
    let mut interp = Interpreter::new();
    interp.run(&w.program, 1_000_000);
    let sb = form_superblock(
        &w.program,
        interp.profile(),
        BlockId(1),
        FormationParams::default(),
    );
    let machine = MachineConfig::default();
    let opt = optimize_superblock(&sb, &OptConfig::smarq(64), &machine, &AliasBlacklist::new());
    let mut sim = Simulator::new(machine, AnyAliasHw::for_kind(HwKind::Smarq, 64));
    let mut state = VliwState::new();
    let mut mem = Memory::new();
    time_fn("simulator/ammp_region", move || {
        sim.run_region(&opt.vliw, &mut state, &mut mem).unwrap()
    })
}

/// Static validator + lint throughput (`crates/verify`): every region
/// the system forms for a batch of seeded random workloads, fully
/// re-checked per iteration — independent fact derivation, symbolic
/// queue replay and all four lint passes. Regions verified per second is
/// `1e9 / ns_per_iter`.
pub fn measure_validator_regions() -> Measurement {
    let machine = MachineConfig::default();
    let opt_cfg = OptConfig::smarq(64);
    let mut traces: Vec<OptTrace> = Vec::new();
    let mut scratch = AllocScratch::new();
    for seed in 0..8u64 {
        let w = smarq_workloads::random_workload(seed);
        let mut cfg = SystemConfig::with_opt(opt_cfg.clone());
        cfg.hot_threshold = 10;
        let mut sys = DynOptSystem::new(w.program, cfg);
        sys.run_to_completion(2_000_000);
        for sb in sys.formed_superblocks() {
            let (_, trace) = optimize_superblock_traced(
                sb,
                &opt_cfg,
                &machine,
                &AliasBlacklist::new(),
                &mut scratch,
            );
            if trace.allocation.is_some() {
                traces.push(trace);
            }
        }
    }
    assert!(!traces.is_empty(), "random workloads must form regions");
    let mut i = 0usize;
    time_fn("verify/random_region_check", move || {
        let t = &traces[i % traces.len()];
        i += 1;
        smarq_verify::check_trace(0, t, 64).len()
    })
}

/// Whole-chain static analyzer throughput at both granularities:
///
/// * `analyzer/region_ranged_check` — one range-aware region check
///   ([`smarq_verify::check_trace_ranged`] with the region's superblock
///   and analyzed entry state), the marginal cost verify-on-emit pays
///   per emitted region (the whole-program dataflow is computed once per
///   program and reused, so it stays outside the timed loop).
/// * `analyzer/chain_fixpoint` — one full [`DynOptSystem::analyze_chain`]
///   run: chain-graph fixpoint plus all five chain checks over every
///   cached region of one system.
///
/// Workloads are the same seeded random batch the validator measurement
/// uses, run under verify-on-emit so traces and assumed entry states are
/// retained.
pub fn measure_analyzer() -> (Measurement, Measurement) {
    let machine = MachineConfig::default();
    let opt_cfg = OptConfig::smarq(64);
    let mut scratch = AllocScratch::new();
    let mut systems: Vec<DynOptSystem> = Vec::new();
    let mut regions: Vec<(smarq_ir::Superblock, OptTrace, smarq::range::RegState)> = Vec::new();
    for seed in 0..8u64 {
        let w = smarq_workloads::random_workload(seed);
        let df = smarq_verify::analyze_reference(&w.program);
        let mut cfg = SystemConfig::with_opt(opt_cfg.clone());
        cfg.hot_threshold = 10;
        cfg.verify_translations = true;
        let mut sys = DynOptSystem::new(w.program, cfg);
        sys.run_to_completion(2_000_000);
        for sb in sys.formed_superblocks() {
            let (_, trace) = optimize_superblock_traced(
                sb,
                &opt_cfg,
                &machine,
                &AliasBlacklist::new(),
                &mut scratch,
            );
            if trace.allocation.is_some() {
                regions.push((sb.clone(), trace, *df.entry_state(sb.entry)));
            }
        }
        if sys.analyze_chain().is_some() {
            systems.push(sys);
        }
    }
    assert!(!regions.is_empty(), "random workloads must form regions");
    assert!(!systems.is_empty(), "random workloads must form chains");
    let mut i = 0usize;
    let per_region = time_fn("analyzer/region_ranged_check", move || {
        let (sb, trace, entry) = &regions[i % regions.len()];
        i += 1;
        smarq_verify::check_trace_ranged(0, trace, 64, Some((sb, entry))).len()
    });
    let mut j = 0usize;
    let per_chain = time_fn("analyzer/chain_fixpoint", move || {
        let sys = &systems[j % systems.len()];
        j += 1;
        sys.analyze_chain().map(|r| r.diagnostics.len())
    });
    (per_region, per_chain)
}

/// Wall-clock of the full 14x5 evaluation sweep, serial vs the scoped
/// thread fan-out (single shot each — the sweep is seconds, not micros).
pub struct SweepTiming {
    /// Serial sweep wall-clock, seconds.
    pub serial_s: f64,
    /// Parallel sweep wall-clock, seconds.
    pub parallel_s: f64,
    /// Worker threads used for the parallel sweep.
    pub threads: usize,
    /// Hardware threads the host reports
    /// ([`std::thread::available_parallelism`]) — recorded so a committed
    /// JSON is interpretable without knowing the machine it ran on.
    pub host_threads: usize,
    /// `true` when the machine has a single hardware thread: the
    /// "parallel" run would be the serial run again, so it is skipped and
    /// `parallel_s` mirrors `serial_s`. A `speedup()` of 1.00 from a
    /// degenerate sweep says nothing about the fan-out.
    pub degenerate: bool,
}

impl SweepTiming {
    /// Parallel speedup over the serial sweep (exactly 1.0 when
    /// [`SweepTiming::degenerate`]).
    pub fn speedup(&self) -> f64 {
        self.serial_s / self.parallel_s
    }
}

/// Times [`Evaluation::run_parallel`] at 1 thread and at the machine's
/// available parallelism. On a single-core machine the second run is
/// skipped ([`SweepTiming::degenerate`]) instead of re-measuring the
/// serial sweep and reporting the noise ratio as a "speedup".
pub fn time_eval_sweep() -> SweepTiming {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t0 = Instant::now();
    let serial = Evaluation::run_parallel(1);
    let serial_s = t0.elapsed().as_secs_f64();
    if threads == 1 {
        return SweepTiming {
            serial_s,
            parallel_s: serial_s,
            threads,
            host_threads: threads,
            degenerate: true,
        };
    }
    let t1 = Instant::now();
    let parallel = Evaluation::run_parallel(threads);
    let parallel_s = t1.elapsed().as_secs_f64();
    assert_eq!(
        serial.rows.len(),
        parallel.rows.len(),
        "sweeps cover the same benchmarks"
    );
    SweepTiming {
        serial_s,
        parallel_s,
        threads,
        host_threads: threads,
        degenerate: false,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes the comparisons, absolute points, sweep timing and
/// multi-guest scaling as a small hand-written JSON document (the
/// container has no serde). Every timed number carries its median plus
/// the min/max repetition spread.
pub fn to_json(
    comparisons: &[Comparison],
    absolutes: &[Measurement],
    sweep: Option<&SweepTiming>,
    multi: Option<&crate::MultiGuestScaling>,
) -> String {
    let mut out = String::from("{\n  \"schema\": \"smarq-bench/2\",\n  \"comparisons\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"before_ns_per_iter\": {:.1}, \"before_ns_min\": {:.1}, \"before_ns_max\": {:.1}, \"after_ns_per_iter\": {:.1}, \"after_ns_min\": {:.1}, \"after_ns_max\": {:.1}, \"samples\": {}, \"speedup\": {:.2}}}{}\n",
            json_escape(&c.name),
            c.before.ns_per_iter,
            c.before.ns_min,
            c.before.ns_max,
            c.after.ns_per_iter,
            c.after.ns_min,
            c.after.ns_max,
            c.before.samples.min(c.after.samples),
            c.speedup(),
            if i + 1 < comparisons.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"absolute\": [\n");
    for (i, m) in absolutes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"ns_min\": {:.1}, \"ns_max\": {:.1}, \"samples\": {}}}{}\n",
            json_escape(&m.name),
            m.ns_per_iter,
            m.ns_min,
            m.ns_max,
            m.samples,
            if i + 1 < absolutes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    if let Some(s) = sweep {
        if s.degenerate {
            // A single-hardware-thread host never ran a parallel sweep;
            // publishing its serial time as "parallel" and the noise ratio
            // as a speedup would be meaningless, so those fields are null.
            out.push_str(&format!(
                ",\n  \"eval_sweep\": {{\"serial_s\": {:.3}, \"parallel_s\": null, \"threads\": {}, \"host_threads\": {}, \"speedup\": null, \"degenerate\": true}}",
                s.serial_s, s.threads, s.host_threads
            ));
        } else {
            out.push_str(&format!(
                ",\n  \"eval_sweep\": {{\"serial_s\": {:.3}, \"parallel_s\": {:.3}, \"threads\": {}, \"host_threads\": {}, \"speedup\": {:.2}, \"degenerate\": false}}",
                s.serial_s,
                s.parallel_s,
                s.threads,
                s.host_threads,
                s.speedup()
            ));
        }
    }
    if let Some(m) = multi {
        out.push_str(&format!(
            ",\n  \"multiguest\": {{\"guests\": {}, \"reps\": {}, \"host_threads\": {}, \"degenerate\": {}, \"shared_translations\": {}, \"private_translations\": {}, \"scaling_speedup\": {}, \"rows\": [\n",
            m.guests,
            m.reps,
            m.host_threads,
            m.degenerate,
            m.shared_translations,
            m.private_translations,
            m.scaling_speedup()
                .map_or("null".to_string(), |s| format!("{s:.2}")),
        ));
        for (i, r) in m.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"threads\": {}, \"wall_s\": {:.3}, \"wall_min_s\": {:.3}, \"wall_max_s\": {:.3}, \"guest_programs_per_s\": {:.2}, \"guest_instrs_per_s\": {:.0}}}{}\n",
                r.threads,
                r.wall_s,
                r.wall_min_s,
                r.wall_max_s,
                r.guest_programs_per_s,
                r.guest_instrs_per_s,
                if i + 1 < m.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]}");
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_loops_kernel_halts_under_pure_interpretation() {
        // Regression: an early version reset the induction variable at
        // the top of each looping block, so every back edge re-ran the
        // reset and the guest never terminated (hanging `bench-json`).
        let p = many_loops_kernel(24, 2_000);
        let mut interp = Interpreter::new();
        let reason = interp.run(&p, 1_000_000);
        assert_eq!(reason, smarq_guest::RunOutcome::Halted);
        // 24 loops x 2000 iterations x 5 body instructions, plus the
        // entry/preheader glue.
        assert!(interp.executed_instrs() >= 24 * 2_000 * 5);
    }

    #[test]
    fn json_shape_is_plausible() {
        let mut m = Measurement::single("abs", 12.5, 10);
        m.ns_min = 11.0;
        m.ns_max = 14.0;
        let c = Comparison {
            name: "cmp".into(),
            before: m.clone(),
            after: Measurement {
                ns_per_iter: 5.0,
                ..m.clone()
            },
        };
        let j = to_json(&[c], &[m], None, None);
        assert!(j.contains("\"schema\": \"smarq-bench/2\""));
        assert!(j.contains("\"speedup\": 2.50"));
        assert!(j.contains("\"ns_per_iter\": 12.5"));
        assert!(j.contains("\"ns_min\": 11.0"));
        assert!(j.contains("\"ns_max\": 14.0"));
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
    }

    #[test]
    fn degenerate_sweep_is_marked_in_json() {
        let s = SweepTiming {
            serial_s: 4.2,
            parallel_s: 4.2,
            threads: 1,
            host_threads: 1,
            degenerate: true,
        };
        let j = to_json(&[], &[], Some(&s), None);
        assert!(j.contains("\"degenerate\": true"));
        assert!(j.contains("\"threads\": 1"));
        assert!(j.contains("\"host_threads\": 1"));
        assert!(j.contains("\"parallel_s\": null"));
        assert!(j.contains("\"speedup\": null"));
        assert!((s.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_degenerate_sweep_keeps_numeric_fields() {
        let s = SweepTiming {
            serial_s: 4.0,
            parallel_s: 2.0,
            threads: 4,
            host_threads: 4,
            degenerate: false,
        };
        let j = to_json(&[], &[], Some(&s), None);
        assert!(j.contains("\"degenerate\": false"));
        assert!(j.contains("\"parallel_s\": 2.000"));
        assert!(j.contains("\"speedup\": 2.00"));
    }

    #[test]
    fn multiguest_json_degenerate_has_null_scaling() {
        let m = crate::MultiGuestScaling {
            guests: 8,
            reps: 5,
            host_threads: 1,
            degenerate: true,
            rows: vec![crate::MultiGuestRow {
                threads: 1,
                wall_s: 1.5,
                wall_min_s: 1.4,
                wall_max_s: 1.6,
                guest_programs_per_s: 5.33,
                guest_instrs_per_s: 1.0e7,
            }],
            shared_translations: 4,
            private_translations: 8,
        };
        let j = to_json(&[], &[], None, Some(&m));
        assert!(j.contains("\"multiguest\""));
        assert!(j.contains("\"scaling_speedup\": null"));
        assert!(j.contains("\"shared_translations\": 4"));
        assert!(j.contains("\"private_translations\": 8"));
        assert!(j.contains("\"wall_min_s\": 1.400"));
        assert_eq!(m.scaling_speedup(), None);
    }

    #[test]
    fn multiguest_scaling_speedup_is_first_over_last() {
        let row = |threads: usize, wall_s: f64| crate::MultiGuestRow {
            threads,
            wall_s,
            wall_min_s: wall_s,
            wall_max_s: wall_s,
            guest_programs_per_s: 8.0 / wall_s,
            guest_instrs_per_s: 1.0e7 / wall_s,
        };
        let m = crate::MultiGuestScaling {
            guests: 8,
            reps: 5,
            host_threads: 4,
            degenerate: false,
            rows: vec![row(1, 4.0), row(2, 2.5), row(4, 2.0)],
            shared_translations: 4,
            private_translations: 8,
        };
        assert!((m.scaling_speedup().unwrap() - 2.0).abs() < 1e-12);
        let j = to_json(&[], &[], None, Some(&m));
        assert!(j.contains("\"scaling_speedup\": 2.00"));
    }
}
