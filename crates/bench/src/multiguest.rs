//! Multi-guest throughput scaling: N guest programs over one shared
//! [`TranslationHub`], scheduled by [`smarq_runtime::run_multi`] at
//! increasing host-thread counts.
//!
//! Two questions, two measurements:
//!
//! * **Core scaling** — wall-clock for the same fixed batch of guest
//!   programs at 1/2/4/8 scheduler threads (capped at the host's
//!   available parallelism), reported as guest-programs/sec and aggregate
//!   guest-instrs/sec, median + min/max over [`REPS`] repetitions. On a
//!   single-hardware-thread host only the 1-thread row is measured and
//!   the result is marked [`MultiGuestScaling::degenerate`] — a "speedup"
//!   from oversubscribing one core would be scheduler-noise, not signal.
//! * **Shared vs. private cache** — total translations claimed when all
//!   guests share one hub vs. each guest paying for its own: the
//!   translate-once win, counted exactly by the hub's own ledger.

use crate::harness::median;
use smarq_guest::{AluOp, CmpOp, Program, ProgramBuilder, Reg};
use smarq_runtime::{
    run_multi, GuestContext, HubConfig, SystemConfig, TranslationHub, DEFAULT_SLICE_STEPS,
};
use std::time::Instant;

/// Guests per batch.
pub const GUESTS: usize = 8;
/// Timed repetitions per thread count (median + min/max are reported).
pub const REPS: usize = 5;

/// One thread-count row of the scaling matrix.
#[derive(Clone, Copy, Debug)]
pub struct MultiGuestRow {
    /// Scheduler threads used.
    pub threads: usize,
    /// Median batch wall-clock, seconds.
    pub wall_s: f64,
    /// Fastest repetition, seconds.
    pub wall_min_s: f64,
    /// Slowest repetition, seconds.
    pub wall_max_s: f64,
    /// Guest programs completed per second (median wall-clock).
    pub guest_programs_per_s: f64,
    /// Aggregate guest instructions retired per second (median
    /// wall-clock).
    pub guest_instrs_per_s: f64,
}

/// The full multi-guest benchmark result.
#[derive(Clone, Debug)]
pub struct MultiGuestScaling {
    /// Guests per batch.
    pub guests: usize,
    /// Repetitions per row.
    pub reps: usize,
    /// Hardware threads the host reports
    /// ([`std::thread::available_parallelism`]).
    pub host_threads: usize,
    /// `true` on a single-hardware-thread host: only the 1-thread row was
    /// measured, and the scaling speedup is undefined (null in JSON).
    pub degenerate: bool,
    /// One row per measured thread count, ascending.
    pub rows: Vec<MultiGuestRow>,
    /// Translations claimed by one hub shared by all guests.
    pub shared_translations: u64,
    /// Sum of translations claimed when each guest owns a private hub.
    pub private_translations: u64,
}

impl MultiGuestScaling {
    /// Throughput speedup of the highest measured thread count over the
    /// 1-thread row; `None` when [`MultiGuestScaling::degenerate`].
    pub fn scaling_speedup(&self) -> Option<f64> {
        if self.degenerate || self.rows.len() < 2 {
            return None;
        }
        Some(self.rows[0].wall_s / self.rows[self.rows.len() - 1].wall_s)
    }
}

/// A finite memory-carrying hot loop; `stride` differentiates the formed
/// regions so distinct guests genuinely translate distinct code.
fn guest_kernel(iters: i64, stride: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), iters);
    b.iconst(entry, Reg(3), 0x1000);
    b.jump(entry, body);
    b.ld(body, Reg(4), Reg(3), stride * 8);
    b.alu(body, AluOp::Add, Reg(4), Reg(4), Reg(1));
    b.st(body, Reg(4), Reg(3), stride * 8);
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    b.finish(entry)
}

/// The benchmark's guest batch: [`GUESTS`] programs over four distinct
/// kernels, so the shared hub sees both duplicate and distinct code.
fn guest_batch(iters: i64) -> Vec<Program> {
    (0..GUESTS)
        .map(|i| guest_kernel(iters, (i % 4) as i64))
        .collect()
}

fn hub_config() -> HubConfig {
    let sys = SystemConfig {
        hot_threshold: 50,
        ..Default::default()
    };
    let mut cfg = HubConfig::from_system(&sys);
    // Inline translation: the scaling under measurement is the guest
    // scheduler's, and single-flight still dedups across guests. A worker
    // pool would add its own threads to every row and blur the per-row
    // thread count.
    cfg.workers = 0;
    cfg
}

/// Runs one batch at `threads` scheduler threads; returns wall seconds
/// and aggregate guest instructions retired.
fn run_batch(programs: &[Program], threads: usize) -> (f64, u64) {
    let hub = TranslationHub::new(hub_config());
    let guests: Vec<GuestContext> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| GuestContext::new(i, p.clone(), &hub))
        .collect();
    let t0 = Instant::now();
    let guests = run_multi(&hub, guests, threads, u64::MAX, DEFAULT_SLICE_STEPS);
    let wall = t0.elapsed().as_secs_f64();
    let instrs = guests.iter().map(|g| g.stats().guest_instrs()).sum();
    (wall, instrs)
}

/// Measures multi-guest throughput scaling; see the module docs.
pub fn bench_multi_guest() -> MultiGuestScaling {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let degenerate = host_threads == 1;
    let programs = guest_batch(400_000);

    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= host_threads)
        .collect();

    let mut rows = Vec::new();
    for &threads in &thread_counts {
        let mut walls = Vec::with_capacity(REPS);
        let mut instrs = 0u64;
        for _ in 0..REPS {
            let (wall, n) = run_batch(&programs, threads);
            walls.push(wall);
            instrs = n; // identical every rep: same programs run to halt
        }
        let wall_min_s = walls.iter().cloned().fold(f64::INFINITY, f64::min);
        let wall_max_s = walls.iter().cloned().fold(0.0, f64::max);
        let wall_s = median(&mut walls);
        rows.push(MultiGuestRow {
            threads,
            wall_s,
            wall_min_s,
            wall_max_s,
            guest_programs_per_s: GUESTS as f64 / wall_s,
            guest_instrs_per_s: instrs as f64 / wall_s,
        });
    }

    // Shared vs private translation counts, from the hub's own ledger.
    let shared = {
        let hub = TranslationHub::new(hub_config());
        let guests: Vec<GuestContext> = programs
            .iter()
            .enumerate()
            .map(|(i, p)| GuestContext::new(i, p.clone(), &hub))
            .collect();
        run_multi(&hub, guests, 1, u64::MAX, DEFAULT_SLICE_STEPS);
        hub.stats().translations_started
    };
    let private = programs
        .iter()
        .map(|p| {
            let hub = TranslationHub::new(hub_config());
            let mut g = GuestContext::new(0, p.clone(), &hub);
            g.run_to_completion(&hub, u64::MAX);
            hub.stats().translations_started
        })
        .sum();

    MultiGuestScaling {
        guests: GUESTS,
        reps: REPS,
        host_threads,
        degenerate,
        rows,
        shared_translations: shared,
        private_translations: private,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::Interpreter;

    #[test]
    fn guest_kernels_halt_and_differ_by_stride() {
        for stride in 0..4 {
            let p = guest_kernel(200, stride);
            let mut i = Interpreter::new();
            assert_eq!(i.run(&p, 100_000), smarq_guest::RunOutcome::Halted);
        }
        assert_ne!(
            smarq_runtime::hash_program(&guest_kernel(200, 0)),
            smarq_runtime::hash_program(&guest_kernel(200, 1)),
        );
    }

    #[test]
    fn shared_hub_dedups_across_the_batch() {
        // A fast miniature of the counter half of the benchmark: 8 guests
        // over 4 distinct kernels share a hub, so the shared claim count
        // must be half the private sum (each kernel claimed once, not
        // twice).
        let programs = guest_batch(2_000);
        let hub = TranslationHub::new(hub_config());
        let guests: Vec<GuestContext> = programs
            .iter()
            .enumerate()
            .map(|(i, p)| GuestContext::new(i, p.clone(), &hub))
            .collect();
        run_multi(&hub, guests, 1, u64::MAX, DEFAULT_SLICE_STEPS);
        let shared = hub.stats().translations_started;
        let private: u64 = programs
            .iter()
            .map(|p| {
                let hub = TranslationHub::new(hub_config());
                let mut g = GuestContext::new(0, p.clone(), &hub);
                g.run_to_completion(&hub, u64::MAX);
                hub.stats().translations_started
            })
            .sum();
        assert_eq!(shared * 2, private, "4 unique kernels, 8 guests");
        assert!(shared >= 4);
    }
}
