//! Synthetic regions and schedules for the micro-benchmarks.

use smarq::{DepGraph, MemKind, MemOpId, RegionSpec};

/// Builds a region of `pairs` serialized store/load hoist pairs plus a
/// shared tail of checking stores — a shape that exercises constraint
/// derivation, rotation and delayed allocation.
pub fn hoist_region(pairs: usize) -> (RegionSpec, DepGraph, Vec<MemOpId>) {
    let mut region = RegionSpec::new();
    let mut stores = Vec::new();
    let mut loads = Vec::new();
    for i in 0..pairs {
        let st = region.push(MemKind::Store, (2 * i) as u32);
        let ld = region.push(MemKind::Load, (2 * i + 1) as u32);
        region.set_may_alias(st, ld, true);
        if i > 0 {
            // Each load may also alias the previous pair's store, chaining
            // the live ranges.
            region.set_may_alias(stores[i - 1], ld, true);
        }
        stores.push(st);
        loads.push(ld);
    }
    let deps = DepGraph::compute(&region);
    // Hoist every load above its pair's store.
    let mut schedule = Vec::with_capacity(pairs * 2);
    for i in 0..pairs {
        schedule.push(loads[i]);
        schedule.push(stores[i]);
    }
    (region, deps, schedule)
}

/// A region with speculative load eliminations sprinkled in (exercises
/// extended dependences, anti-constraints and AMOV insertion).
pub fn elim_region(groups: usize) -> (RegionSpec, DepGraph, Vec<MemOpId>) {
    let mut region = RegionSpec::new();
    let mut schedule = Vec::new();
    for g in 0..groups {
        let base = (g * 10) as u32;
        let src = region.push(MemKind::Load, base); // forwarding source
        let st = region.push(MemKind::Store, base + 1); // may-alias store
        let dead = region.push(MemKind::Load, base); // eliminated
        let chk = region.push(MemKind::Store, base + 2); // hoist target
        let tail = region.push(MemKind::Load, base + 3); // hoisted load
        region.set_may_alias(src, st, true);
        region.set_may_alias(st, dead, true);
        region.set_may_alias(chk, tail, true);
        region.set_may_alias(src, chk, true);
        region.add_load_elim(src, dead);
        // Schedule: src, tail hoisted above chk, st, chk.
        schedule.extend([src, tail, st, chk]);
    }
    let deps = DepGraph::compute(&region);
    (region, deps, schedule)
}
