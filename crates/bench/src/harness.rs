//! Minimal `Instant`-based micro-benchmark harness.
//!
//! The evaluation container is offline, so the usual external benchmark
//! frameworks are unavailable; this module provides the small subset we
//! need: adaptive iteration calibration, best-of-N sampling, and a
//! one-line report per benchmark. Every `benches/*.rs` target and the
//! `figures -- bench-json` mode run on top of it.

use std::time::Instant;

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Median per-iteration cost over the timed samples, in nanoseconds
    /// (the headline number: robust to a stray slow sample on a noisy
    /// host, unlike best-of which hides all variance).
    pub ns_per_iter: f64,
    /// Fastest sample's per-iteration cost, in nanoseconds.
    pub ns_min: f64,
    /// Slowest sample's per-iteration cost, in nanoseconds.
    pub ns_max: f64,
    /// Iterations per timed sample (chosen by calibration).
    pub iters_per_sample: u64,
    /// Number of timed samples taken.
    pub samples: u32,
}

impl Measurement {
    /// A single-observation measurement (derived counters, one-shot
    /// wall-clock numbers): median, min and max all equal `ns_per_iter`.
    pub fn single(name: impl Into<String>, ns_per_iter: f64, iters: u64) -> Self {
        Measurement {
            name: name.into(),
            ns_per_iter,
            ns_min: ns_per_iter,
            ns_max: ns_per_iter,
            iters_per_sample: iters,
            samples: 1,
        }
    }
}

/// Median of `samples` (which must be non-empty; sorted in place).
pub(crate) fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

impl Measurement {
    /// One aligned report line (`name .... 123.4 ns/iter`).
    pub fn line(&self) -> String {
        format!(
            "{:<44} {:>14.1} ns/iter   ({} iters x {} samples)",
            self.name, self.ns_per_iter, self.iters_per_sample, self.samples
        )
    }
}

fn run_batch<T>(iters: u64, f: &mut impl FnMut() -> T) -> std::time::Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed()
}

/// Times `f` over `samples` repetition batches, each sized by doubling
/// until a batch runs at least `min_sample_ms` milliseconds (the doubling
/// batches double as warmup), and reports the *median* per-iteration cost
/// plus the min/max spread.
pub fn time_fn_cfg<T>(
    name: &str,
    min_sample_ms: u64,
    samples: u32,
    mut f: impl FnMut() -> T,
) -> Measurement {
    let mut iters = 1u64;
    loop {
        let d = run_batch(iters, &mut f);
        if d.as_millis() as u64 >= min_sample_ms || iters >= (1 << 22) {
            break;
        }
        iters *= 2;
    }
    let mut timings: Vec<f64> = (0..samples.max(1))
        .map(|_| run_batch(iters, &mut f).as_nanos() as f64 / iters as f64)
        .collect();
    let med = median(&mut timings);
    Measurement {
        name: name.to_string(),
        ns_per_iter: med,
        ns_min: timings[0],
        ns_max: timings[timings.len() - 1],
        iters_per_sample: iters,
        samples: samples.max(1),
    }
}

/// [`time_fn_cfg`] with the default budget (10 ms samples, median of 5
/// repetitions).
pub fn time_fn<T>(name: &str, f: impl FnMut() -> T) -> Measurement {
    time_fn_cfg(name, 10, 5, f)
}

/// A before/after pair measured in the same process, for tracking the
/// speedup of a fast path over the retained reference implementation.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Metric name (stable across PRs — used as the JSON key).
    pub name: String,
    /// Reference ("before") implementation.
    pub before: Measurement,
    /// Fast-path ("after") implementation.
    pub after: Measurement,
}

impl Comparison {
    /// Speedup of the fast path over the reference.
    pub fn speedup(&self) -> f64 {
        self.before.ns_per_iter / self.after.ns_per_iter
    }

    /// Two report lines plus the speedup.
    pub fn report(&self) -> String {
        format!(
            "{}\n{}\n{:<44} {:>14.2}x\n",
            self.before.line(),
            self.after.line(),
            format!("  -> speedup {}", self.name),
            self.speedup()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_fn_measures_something_positive() {
        let m = time_fn_cfg("spin", 1, 2, || {
            let mut s = 0u64;
            for i in 0..100u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters_per_sample >= 1);
        assert!(m.ns_min <= m.ns_per_iter && m.ns_per_iter <= m.ns_max);
    }

    #[test]
    fn comparison_speedup_is_ratio() {
        let c = Comparison {
            name: "r".into(),
            before: Measurement::single("x", 100.0, 1),
            after: Measurement::single("x", 25.0, 1),
        };
        assert!((c.speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut odd = [3.0, 1.0, 100.0, 2.0, 4.0];
        assert_eq!(median(&mut odd), 3.0);
        let mut even = [1.0, 2.0, 3.0, 100.0];
        assert_eq!(median(&mut even), 2.5);
    }
}
