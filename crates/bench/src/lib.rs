//! # smarq-bench — evaluation harness
//!
//! Drives every workload through the dynamic optimization system under the
//! paper's hardware configurations and regenerates each table and figure
//! of the evaluation (paper §6). The `figures` binary prints them (and,
//! with `bench-json`, writes the tracked perf baseline); the bench targets
//! under `benches/` measure the implementation itself (allocator,
//! constraint analysis and simulator throughput) on the in-repo
//! [`harness`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use smarq_opt::OptConfig;
use smarq_runtime::{DynOptSystem, SystemConfig, SystemStats};
use smarq_workloads::Workload;

pub mod figures;
pub mod harness;
pub mod multiguest;
pub mod perf;
pub mod synth;
pub mod tables;

pub use multiguest::{bench_multi_guest, MultiGuestRow, MultiGuestScaling};

/// The evaluation's hardware/optimizer configurations (paper Figures 15/16).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalConfig {
    /// No alias-detection hardware (the speedup baseline).
    Baseline,
    /// SMARQ with 64 alias registers.
    Smarq64,
    /// SMARQ limited to 16 alias registers (Efficeon-like scalability).
    Smarq16,
    /// Itanium-ALAT-like detection.
    AlatLike,
    /// SMARQ-64 with store reordering disabled (Figure 16).
    Smarq64NoStoreReorder,
}

impl EvalConfig {
    /// All configurations, baseline first.
    pub const ALL: [EvalConfig; 5] = [
        EvalConfig::Baseline,
        EvalConfig::Smarq64,
        EvalConfig::Smarq16,
        EvalConfig::AlatLike,
        EvalConfig::Smarq64NoStoreReorder,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            EvalConfig::Baseline => "no-alias-hw",
            EvalConfig::Smarq64 => "SMARQ",
            EvalConfig::Smarq16 => "SMARQ16",
            EvalConfig::AlatLike => "Itanium-like",
            EvalConfig::Smarq64NoStoreReorder => "SMARQ/no-st-reorder",
        }
    }

    /// The optimizer configuration.
    pub fn opt(self) -> OptConfig {
        match self {
            EvalConfig::Baseline => OptConfig::no_alias_hw(),
            EvalConfig::Smarq64 => OptConfig::smarq(64),
            EvalConfig::Smarq16 => OptConfig::smarq(16),
            EvalConfig::AlatLike => OptConfig::alat(),
            EvalConfig::Smarq64NoStoreReorder => OptConfig::smarq_no_store_reorder(64),
        }
    }
}

/// Runs one workload to completion under one configuration.
pub fn run_workload(w: &Workload, config: EvalConfig) -> SystemStats {
    let mut sys = DynOptSystem::new(w.program.clone(), SystemConfig::with_opt(config.opt()));
    sys.run_to_completion(u64::MAX);
    sys.stats().clone()
}

/// One benchmark's results across all configurations.
#[derive(Clone, Debug)]
pub struct BenchmarkRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Stats per configuration, indexed like [`EvalConfig::ALL`].
    pub stats: Vec<SystemStats>,
}

impl BenchmarkRow {
    /// Stats for one configuration.
    pub fn get(&self, c: EvalConfig) -> &SystemStats {
        let i = EvalConfig::ALL.iter().position(|&x| x == c).unwrap();
        &self.stats[i]
    }

    /// Speedup of `c` over the baseline.
    pub fn speedup(&self, c: EvalConfig) -> f64 {
        self.get(EvalConfig::Baseline).total_cycles() as f64 / self.get(c).total_cycles() as f64
    }

    /// The record of the hottest region (most entries) under `c`.
    pub fn hot_region(&self, c: EvalConfig) -> Option<&smarq_runtime::RegionRecord> {
        self.get(c).per_region.iter().max_by_key(|r| r.entries)
    }
}

/// Full evaluation: every workload under every configuration.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// One row per benchmark, in the paper's order.
    pub rows: Vec<BenchmarkRow>,
}

impl Evaluation {
    /// Runs the whole evaluation (14 benchmarks × 5 configurations),
    /// fanning the cells out across the machine's available parallelism.
    /// Every (workload, configuration) cell is an independent simulation,
    /// so the result is identical to a serial sweep.
    pub fn run() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::run_parallel(threads)
    }

    /// Like [`Evaluation::run`] with an explicit worker-thread count
    /// (`1` gives the serial sweep).
    pub fn run_parallel(threads: usize) -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let workloads = smarq_workloads::all();
        let n_cfg = EvalConfig::ALL.len();
        let total = workloads.len() * n_cfg;
        // Work-stealing over a flat cell index: long-running workloads do
        // not serialize behind each other the way a per-row split would.
        let next = AtomicUsize::new(0);
        let cells: Vec<Mutex<Option<SystemStats>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let workers = threads.clamp(1, total.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let stats = run_workload(&workloads[i / n_cfg], EvalConfig::ALL[i % n_cfg]);
                    *cells[i].lock().expect("no panics while holding lock") = Some(stats);
                });
            }
        });
        let mut it = cells
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every cell computed"));
        let rows = workloads
            .iter()
            .map(|w| BenchmarkRow {
                name: w.name,
                stats: (0..n_cfg).map(|_| it.next().unwrap()).collect(),
            })
            .collect();
        Evaluation { rows }
    }

    /// Arithmetic-mean speedup of `c` over the baseline.
    pub fn mean_speedup(&self, c: EvalConfig) -> f64 {
        self.rows.iter().map(|r| r.speedup(c)).sum::<f64>() / self.rows.len() as f64
    }

    /// Geometric-mean speedup of `c` over the baseline.
    pub fn geomean_speedup(&self, c: EvalConfig) -> f64 {
        let s: f64 = self.rows.iter().map(|r| r.speedup(c).ln()).sum();
        (s / self.rows.len() as f64).exp()
    }
}

/// Renders a unit-less horizontal ASCII bar.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max <= 0.0 {
        0
    } else {
        ((value / max) * width as f64).round() as usize
    };
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrip() {
        for c in EvalConfig::ALL {
            assert!(!c.name().is_empty());
            let _ = c.opt();
        }
        assert_eq!(EvalConfig::ALL[0], EvalConfig::Baseline);
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn smarq_beats_baseline_on_a_sample() {
        let w = smarq_workloads::by_name("swim").unwrap();
        let base = run_workload(&w, EvalConfig::Baseline);
        let smarq = run_workload(&w, EvalConfig::Smarq64);
        assert!(smarq.total_cycles() < base.total_cycles());
        assert_eq!(base.guest_instrs(), smarq.guest_instrs());
    }

    #[test]
    fn benchmark_row_accessors() {
        let w = smarq_workloads::by_name("art").unwrap();
        let row = BenchmarkRow {
            name: w.name,
            stats: EvalConfig::ALL
                .iter()
                .map(|&c| run_workload(&w, c))
                .collect(),
        };
        assert!(row.speedup(EvalConfig::Smarq64) >= 1.0);
        assert!(row.hot_region(EvalConfig::Smarq64).is_some());
        assert!((row.speedup(EvalConfig::Baseline) - 1.0).abs() < 1e-12);
    }
}
