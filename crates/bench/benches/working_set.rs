//! Working-set computation cost: SMARQ vs the program-order baselines and
//! the live-range lower bound (paper Figure 17 inputs).

use criterion::{criterion_group, criterion_main, Criterion};
use smarq::baseline::{program_order_allocate, BaselineOptions, BaselineScope};
use smarq::{allocate, live_range_lower_bound};
use smarq_bench::synth::hoist_region;

fn bench_working_set(c: &mut Criterion) {
    let (region, deps, schedule) = hoist_region(64);
    let mut g = c.benchmark_group("working_set");
    g.bench_function("smarq", |b| {
        b.iter(|| allocate(&region, &deps, std::hint::black_box(&schedule), u32::MAX).unwrap())
    });
    g.bench_function("program_order_p_only", |b| {
        b.iter(|| {
            program_order_allocate(
                &region,
                &deps,
                std::hint::black_box(&schedule),
                u32::MAX,
                BaselineOptions {
                    scope: BaselineScope::POnly,
                    rotate: true,
                },
            )
            .unwrap()
        })
    });
    g.bench_function("lower_bound", |b| {
        b.iter(|| live_range_lower_bound(&region, &deps, std::hint::black_box(&schedule)))
    });
    g.finish();
}

criterion_group!(benches, bench_working_set);
criterion_main!(benches);
