//! Working-set computation cost: SMARQ vs the program-order baselines and
//! the live-range lower bound (paper Figure 17 inputs).

use smarq::baseline::{program_order_allocate, BaselineOptions, BaselineScope};
use smarq::{allocate, live_range_lower_bound};
use smarq_bench::harness::time_fn;
use smarq_bench::synth::hoist_region;

fn main() {
    let (region, deps, schedule) = hoist_region(64);
    let m = time_fn("working_set/smarq", || {
        allocate(&region, &deps, std::hint::black_box(&schedule), u32::MAX).unwrap()
    });
    println!("{}", m.line());
    let m = time_fn("working_set/program_order_p_only", || {
        program_order_allocate(
            &region,
            &deps,
            std::hint::black_box(&schedule),
            u32::MAX,
            BaselineOptions {
                scope: BaselineScope::POnly,
                rotate: true,
            },
        )
        .unwrap()
    });
    println!("{}", m.line());
    let m = time_fn("working_set/lower_bound", || {
        live_range_lower_bound(&region, &deps, std::hint::black_box(&schedule))
    });
    println!("{}", m.line());
}
