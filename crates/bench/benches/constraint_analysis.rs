//! Dependence + constraint derivation cost (paper §4 analyses), including
//! the naive-vs-bit-matrix dependence comparison.

use smarq::{ConstraintGraph, DepGraph};
use smarq_bench::harness::time_fn;
use smarq_bench::perf::compare_constraint_analysis;
use smarq_bench::synth::{elim_region, hoist_region};

fn main() {
    for pairs in [16usize, 64] {
        let (region, _, schedule) = hoist_region(pairs);
        let m = time_fn(&format!("deps/{}", pairs * 2), || {
            DepGraph::compute(std::hint::black_box(&region))
        });
        println!("{}", m.line());
        let deps = DepGraph::compute(&region);
        let m = time_fn(&format!("derive/{}", pairs * 2), || {
            ConstraintGraph::derive(&region, &deps, std::hint::black_box(&schedule))
        });
        println!("{}", m.line());
    }
    let (region, _, schedule) = elim_region(16);
    let deps = DepGraph::compute(&region);
    let m = time_fn("derive_with_eliminations", || {
        ConstraintGraph::derive(&region, &deps, std::hint::black_box(&schedule))
    });
    println!("{}", m.line());

    println!("{}", compare_constraint_analysis().report());
}
