//! Dependence + constraint derivation cost (paper §4 analyses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smarq::{ConstraintGraph, DepGraph};
use smarq_bench::synth::{elim_region, hoist_region};

fn bench_constraints(c: &mut Criterion) {
    let mut g = c.benchmark_group("constraint_analysis");
    for pairs in [16usize, 64] {
        let (region, _, schedule) = hoist_region(pairs);
        g.bench_with_input(BenchmarkId::new("deps", pairs * 2), &pairs, |b, _| {
            b.iter(|| DepGraph::compute(std::hint::black_box(&region)))
        });
        let deps = DepGraph::compute(&region);
        g.bench_with_input(BenchmarkId::new("derive", pairs * 2), &pairs, |b, _| {
            b.iter(|| ConstraintGraph::derive(&region, &deps, std::hint::black_box(&schedule)))
        });
    }
    let (region, _, schedule) = elim_region(16);
    let deps = DepGraph::compute(&region);
    g.bench_function("derive_with_eliminations", |b| {
        b.iter(|| ConstraintGraph::derive(&region, &deps, std::hint::black_box(&schedule)))
    });
    g.finish();
}

criterion_group!(benches, bench_constraints);
criterion_main!(benches);
