//! Cycle-level simulator throughput on a real translated region.

use criterion::{criterion_group, criterion_main, Criterion};
use smarq_guest::{Interpreter, Memory};
use smarq_ir::{form_superblock, FormationParams};
use smarq_opt::{optimize_superblock, AliasBlacklist, OptConfig};
use smarq_vliw::{AnyAliasHw, HwKind, MachineConfig, Simulator, VliwState};

fn bench_sim(c: &mut Criterion) {
    let w = smarq_workloads::by_name("ammp").unwrap();
    let mut interp = Interpreter::new();
    interp.run(&w.program, 1_000_000);
    let sb = form_superblock(
        &w.program,
        interp.profile(),
        smarq_guest::BlockId(1),
        FormationParams::default(),
    );
    let machine = MachineConfig::default();
    let opt = optimize_superblock(&sb, &OptConfig::smarq(64), &machine, &AliasBlacklist::new());
    let mut sim = Simulator::new(machine, AnyAliasHw::for_kind(HwKind::Smarq, 64));

    c.bench_function("simulate_ammp_region", |b| {
        let mut state = VliwState::new();
        let mut mem = Memory::new();
        b.iter(|| {
            sim.run_region(std::hint::black_box(&opt.vliw), &mut state, &mut mem)
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
