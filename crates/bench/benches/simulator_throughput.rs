//! Cycle-level simulator throughput on a real translated region, plus the
//! queue-check microbench (dense vs sparse occupancy) behind the
//! simulator's memory-access path.

use smarq_bench::perf::{compare_mem_access_dense, compare_mem_access_sparse};

fn main() {
    println!("{}", smarq_bench::perf::measure_simulator_region().line());
    println!("{}", compare_mem_access_dense().report());
    println!("{}", compare_mem_access_sparse().report());
}
