//! Ablation benches for the design choices DESIGN.md calls out:
//! rotation on/off in the baseline allocator, and optimization with vs
//! without speculative eliminations (the features that require the AMOV
//! and anti-constraint machinery).

use smarq::baseline::{program_order_allocate, BaselineOptions, BaselineScope};
use smarq_bench::harness::time_fn;
use smarq_bench::synth::hoist_region;
use smarq_guest::Interpreter;
use smarq_ir::{form_superblock, FormationParams};
use smarq_opt::{optimize_superblock, AliasBlacklist, OptConfig};
use smarq_vliw::MachineConfig;

fn bench_rotation() {
    let (region, deps, schedule) = hoist_region(64);
    for rotate in [true, false] {
        let name = if rotate {
            "ablation_rotation/with_rotation"
        } else {
            "ablation_rotation/without_rotation"
        };
        let m = time_fn(name, || {
            program_order_allocate(
                &region,
                &deps,
                std::hint::black_box(&schedule),
                u32::MAX,
                BaselineOptions {
                    scope: BaselineScope::POnly,
                    rotate,
                },
            )
            .unwrap()
        });
        println!("{}", m.line());
    }
}

fn bench_eliminations() {
    let w = smarq_workloads::by_name("fma3d").unwrap();
    let mut interp = Interpreter::new();
    interp.run(&w.program, 1_000_000);
    let sb = form_superblock(
        &w.program,
        interp.profile(),
        smarq_guest::BlockId(1),
        FormationParams::default(),
    );
    let machine = MachineConfig::default();
    let mut with = OptConfig::smarq(64);
    let mut without = OptConfig::smarq(64);
    with.allow_spec_load_elim = true;
    without.allow_spec_load_elim = false;
    without.allow_spec_store_elim = false;
    for (name, cfg) in [
        ("ablation_eliminations/with_spec_elims", with),
        ("ablation_eliminations/without_spec_elims", without),
    ] {
        let m = time_fn(name, || {
            optimize_superblock(
                std::hint::black_box(&sb),
                &cfg,
                &machine,
                &AliasBlacklist::new(),
            )
        });
        println!("{}", m.line());
    }
}

fn main() {
    bench_rotation();
    bench_eliminations();
}
