//! End-to-end harness timing: a full dynamic-optimization run (a compact
//! slice of the Figure 15 evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smarq_bench::{run_workload, EvalConfig};

fn bench_endtoend(c: &mut Criterion) {
    let mut g = c.benchmark_group("endtoend");
    g.sample_size(10);
    for cfg in [EvalConfig::Baseline, EvalConfig::Smarq64] {
        let w = smarq_workloads::scaled("swim", 2_000).unwrap();
        g.bench_with_input(BenchmarkId::new("swim", cfg.name()), &cfg, |b, &cfg| {
            b.iter(|| run_workload(std::hint::black_box(&w), cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_endtoend);
criterion_main!(benches);
