//! End-to-end harness timing: a full dynamic-optimization run (a compact
//! slice of the Figure 15 evaluation).

use smarq_bench::harness::time_fn_cfg;
use smarq_bench::{run_workload, EvalConfig};

fn main() {
    for cfg in [EvalConfig::Baseline, EvalConfig::Smarq64] {
        let w = smarq_workloads::scaled("swim", 2_000).unwrap();
        let m = time_fn_cfg(&format!("endtoend/swim/{}", cfg.name()), 50, 3, || {
            run_workload(std::hint::black_box(&w), cfg)
        });
        println!("{}", m.line());
    }
}
