//! Allocator throughput: how fast is the Fig. 13 algorithm? (Supports the
//! paper's Figure 18 claim that allocation time is negligible.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smarq::allocate;
use smarq_bench::synth::hoist_region;

fn bench_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_throughput");
    for pairs in [8usize, 32, 128] {
        let (region, deps, schedule) = hoist_region(pairs);
        g.bench_with_input(BenchmarkId::new("smarq", pairs * 2), &pairs, |b, _| {
            b.iter(|| {
                allocate(
                    std::hint::black_box(&region),
                    &deps,
                    std::hint::black_box(&schedule),
                    u32::MAX,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
