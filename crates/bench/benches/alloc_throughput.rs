//! Allocator throughput: how fast is the Fig. 13 algorithm? (Supports the
//! paper's Figure 18 claim that allocation time is negligible.)

use smarq::allocate;
use smarq_bench::harness::time_fn;
use smarq_bench::perf::compare_allocator;
use smarq_bench::synth::hoist_region;

fn main() {
    for pairs in [8usize, 32, 128] {
        let (region, deps, schedule) = hoist_region(pairs);
        let m = time_fn(&format!("smarq/{}", pairs * 2), || {
            allocate(
                std::hint::black_box(&region),
                &deps,
                std::hint::black_box(&schedule),
                u32::MAX,
            )
            .unwrap()
        });
        println!("{}", m.line());
    }
    println!("{}", compare_allocator().report());
}
