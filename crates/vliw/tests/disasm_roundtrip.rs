//! Property test mirroring `crates/guest/tests/asm_roundtrip.rs` for the
//! VLIW side: the disassembler and [`parse_vliw`] are inverse on tag-0
//! programs, and the parser never panics on random printable input.
//!
//! Random programs are drawn from the in-repo seeded [`Prng`] (the
//! workspace builds offline, without proptest); failures reproduce from the
//! printed seed.

use smarq::prng::Prng;
use smarq_guest::{AluOp, CmpOp, FpuOp};
use smarq_vliw::{parse_vliw, AliasAnnot, Bundle, CondExit, ExitTarget, VliwOp, VliwProgram};

const ALU_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Slt,
];

const FPU_OPS: [FpuOp; 6] = [
    FpuOp::Add,
    FpuOp::Sub,
    FpuOp::Mul,
    FpuOp::Div,
    FpuOp::Min,
    FpuOp::Max,
];

const CMP_OPS: [CmpOp; 4] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge];

fn reg(rng: &mut Prng) -> u8 {
    rng.range_u32(0, 64) as u8
}

fn annot(rng: &mut Prng) -> AliasAnnot {
    match rng.bounded(4) {
        0 => AliasAnnot::None,
        1 => AliasAnnot::Smarq {
            p: rng.bounded(2) == 0,
            c: rng.bounded(2) == 0,
            offset: rng.range_u32(0, 64),
        },
        2 => AliasAnnot::Efficeon {
            set: (rng.bounded(2) == 0).then(|| rng.range_u32(0, 48) as u8),
            check_mask: rng.next_u64() & 0xFFFF,
        },
        _ => AliasAnnot::AlatSet {
            entry: rng.range_u32(0, 32),
        },
    }
}

/// A random op. The textual form carries neither memory tags nor NaN
/// payloads, so tags are 0 and FP constants finite.
fn op(rng: &mut Prng, num_exits: u32) -> VliwOp {
    let disp = rng.range_i64(-64, 512);
    match rng.bounded(17) {
        0 => VliwOp::Nop,
        1 => VliwOp::IConst {
            rd: reg(rng),
            value: rng.next_u64() as u32 as i32 as i64,
        },
        2 => VliwOp::Alu {
            op: *rng.pick(&ALU_OPS),
            rd: reg(rng),
            ra: reg(rng),
            rb: reg(rng),
        },
        3 => VliwOp::AluImm {
            op: *rng.pick(&ALU_OPS),
            rd: reg(rng),
            ra: reg(rng),
            imm: i64::from(rng.next_u64() as u16 as i16),
        },
        4 => VliwOp::Copy {
            rd: reg(rng),
            ra: reg(rng),
        },
        5 => VliwOp::FConst {
            fd: reg(rng),
            value: f64::from(rng.range_i64(-8000, 8000) as i32) / 8.0,
        },
        6 => VliwOp::Fpu {
            op: *rng.pick(&FPU_OPS),
            fd: reg(rng),
            fa: reg(rng),
            fb: reg(rng),
        },
        7 => VliwOp::FCopy {
            fd: reg(rng),
            fa: reg(rng),
        },
        8 => VliwOp::ItoF {
            fd: reg(rng),
            ra: reg(rng),
        },
        9 => VliwOp::FtoI {
            rd: reg(rng),
            fa: reg(rng),
        },
        10 => VliwOp::Load {
            rd: reg(rng),
            base: reg(rng),
            disp,
            alias: annot(rng),
            tag: 0,
        },
        11 => VliwOp::Store {
            rs: reg(rng),
            base: reg(rng),
            disp,
            alias: annot(rng),
            tag: 0,
        },
        12 => VliwOp::FLoad {
            fd: reg(rng),
            base: reg(rng),
            disp,
            alias: annot(rng),
            tag: 0,
        },
        13 => VliwOp::FStore {
            fs: reg(rng),
            base: reg(rng),
            disp,
            alias: annot(rng),
            tag: 0,
        },
        14 => VliwOp::AlatClear {
            entry: rng.range_u32(0, 32),
        },
        15 => VliwOp::Rotate {
            amount: rng.range_u32(1, 8),
        },
        _ => VliwOp::Exit {
            exit_id: rng.range_u32(0, num_exits),
            cond: (rng.bounded(2) == 0).then(|| CondExit {
                op: *rng.pick(&CMP_OPS),
                ra: reg(rng),
                rb: reg(rng),
            }),
        },
    }
}

fn program(rng: &mut Prng) -> VliwProgram {
    let num_exits = rng.range_u32(1, 4);
    let bundles = (0..rng.range_usize(1, 8))
        .map(|_| Bundle {
            // Non-empty: an empty bundle renders as `nop` and parses back
            // as a one-Nop bundle, which is fine for the machine but not
            // structurally equal.
            ops: (0..rng.range_usize(1, 5))
                .map(|_| op(rng, num_exits))
                .collect(),
        })
        .collect();
    let exits = (0..num_exits)
        .map(|_| ExitTarget {
            guest_block: (rng.bounded(3) > 0).then(|| rng.range_u32(0, 100)),
        })
        .collect();
    VliwProgram { bundles, exits }
}

#[test]
fn random_programs_roundtrip() {
    for seed in 0..256u64 {
        let mut rng = Prng::new(seed);
        let p1 = program(&mut rng);
        let text = p1.to_string();
        let p2 = parse_vliw(&text).unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}"));
        assert_eq!(p1, p2, "seed {seed}: roundtrip changed the program");
        // Idempotence: disassembling again is stable.
        assert_eq!(text, p2.to_string(), "seed {seed}: unstable disassembly");
    }
}

#[test]
fn parser_never_panics() {
    for seed in 0..512u64 {
        let mut rng = Prng::new(seed ^ 0x5A5A_5A5A);
        let len = rng.range_usize(0, 201);
        let src: String = (0..len)
            .map(|_| {
                let c = rng.range_u32(0x20, 0x7F + 1);
                if c == 0x7F {
                    '\n'
                } else {
                    char::from_u32(c).unwrap()
                }
            })
            .collect();
        let _ = parse_vliw(&src);
    }
}
