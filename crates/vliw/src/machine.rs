//! Machine configuration — the reproduction's substitute for the paper's
//! Table 2 (whose contents were lost in the available text). All four
//! alias-detection schemes run on the *same* machine model so that the
//! relative comparisons of the evaluation are preserved.

use crate::cache::CacheParams;

/// Parameters of the in-order VLIW machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MachineConfig {
    /// Maximum operations per bundle.
    pub issue_width: u32,
    /// Memory slots per bundle.
    pub mem_slots: u32,
    /// Floating-point slots per bundle.
    pub fpu_slots: u32,
    /// Integer/branch slots per bundle (ALU class; branches share them).
    pub alu_slots: u32,
    /// Integer ALU latency (cycles).
    pub lat_int: u32,
    /// Integer multiply latency.
    pub lat_mul: u32,
    /// Integer divide latency.
    pub lat_div: u32,
    /// Load-use latency (L1 hit).
    pub lat_load: u32,
    /// FP add/sub/mul latency.
    pub lat_fpu: u32,
    /// FP divide latency.
    pub lat_fdiv: u32,
    /// Hardware alias register count (the paper's machine has 64).
    pub num_alias_regs: u32,
    /// Cycles charged for creating an atomic-region checkpoint.
    pub checkpoint_cycles: u64,
    /// Cycles charged for rolling back an atomic region.
    pub rollback_cycles: u64,
    /// Cycles a pure interpreter spends per guest instruction (used when
    /// execution falls back to interpretation).
    pub interp_cycles_per_instr: u64,
    /// Optional L1 data cache. `None` (the default) uses the fixed
    /// `lat_load` for every access, keeping the evaluation deterministic;
    /// `Some(..)` makes load latency locality-dependent.
    pub dcache: Option<CacheParams>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            issue_width: 8,
            mem_slots: 2,
            fpu_slots: 2,
            alu_slots: 4,
            lat_int: 1,
            lat_mul: 3,
            lat_div: 12,
            lat_load: 4,
            lat_fpu: 4,
            lat_fdiv: 16,
            num_alias_regs: 64,
            checkpoint_cycles: 1,
            rollback_cycles: 100,
            interp_cycles_per_instr: 20,
            dcache: None,
        }
    }
}

impl MachineConfig {
    /// The default machine with a different alias register count.
    pub fn with_alias_regs(num_alias_regs: u32) -> Self {
        MachineConfig {
            num_alias_regs,
            ..Self::default()
        }
    }

    /// Latency of an FP operation.
    pub fn fpu_latency(&self, op: smarq_guest::FpuOp) -> u32 {
        match op {
            smarq_guest::FpuOp::Div => self.lat_fdiv,
            _ => self.lat_fpu,
        }
    }

    /// Latency of an integer ALU operation.
    pub fn alu_latency(&self, op: smarq_guest::AluOp) -> u32 {
        match op {
            smarq_guest::AluOp::Mul => self.lat_mul,
            smarq_guest::AluOp::Div => self.lat_div,
            _ => self.lat_int,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::{AluOp, FpuOp};

    #[test]
    fn defaults_are_consistent() {
        let m = MachineConfig::default();
        assert_eq!(m.mem_slots + m.fpu_slots + m.alu_slots, m.issue_width);
        assert_eq!(m.num_alias_regs, 64);
    }

    #[test]
    fn with_alias_regs_overrides_only_that() {
        let m = MachineConfig::with_alias_regs(16);
        assert_eq!(m.num_alias_regs, 16);
        assert_eq!(m.issue_width, MachineConfig::default().issue_width);
    }

    #[test]
    fn latencies() {
        let m = MachineConfig::default();
        assert_eq!(m.alu_latency(AluOp::Add), 1);
        assert_eq!(m.alu_latency(AluOp::Mul), 3);
        assert_eq!(m.alu_latency(AluOp::Div), 12);
        assert_eq!(m.fpu_latency(FpuOp::Add), 4);
        assert_eq!(m.fpu_latency(FpuOp::Div), 16);
    }
}
