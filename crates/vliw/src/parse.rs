//! Parser for the [`VliwProgram`] disassembly format — the inverse of the
//! [`Display`](std::fmt::Display) rendering in [`crate::disasm`].
//!
//! Mainly a test vehicle: round-tripping `program -> text -> program`
//! pins the disassembly syntax and catches silent formatting drift. The
//! textual form does not carry memory-op `tag`s, so only tag-0 programs
//! round-trip exactly.
//!
//! ```
//! use smarq_vliw::{parse_vliw, Bundle, ExitTarget, VliwOp, VliwProgram};
//! let p = VliwProgram {
//!     bundles: vec![Bundle {
//!         ops: vec![
//!             VliwOp::IConst { rd: 1, value: 7 },
//!             VliwOp::Exit { exit_id: 0, cond: None },
//!         ],
//!     }],
//!     exits: vec![ExitTarget { guest_block: None }],
//! };
//! assert_eq!(parse_vliw(&p.to_string()).unwrap(), p);
//! ```

use crate::isa::{AliasAnnot, Bundle, CondExit, ExitTarget, VliwOp, VliwProgram};
use smarq_guest::{AluOp, CmpOp, FpuOp};

fn alu_from(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "slt" => AluOp::Slt,
        _ => return None,
    })
}

fn fpu_from(m: &str) -> Option<FpuOp> {
    Some(match m {
        "fadd" => FpuOp::Add,
        "fsub" => FpuOp::Sub,
        "fmul" => FpuOp::Mul,
        "fdiv" => FpuOp::Div,
        "fmin" => FpuOp::Min,
        "fmax" => FpuOp::Max,
        _ => return None,
    })
}

fn cmp_from(m: &str) -> Option<CmpOp> {
    Some(match m {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

fn reg(tok: &str, prefix: char) -> Result<u8, String> {
    let tok = tok.trim();
    tok.strip_prefix(prefix)
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("expected {prefix}-register, got `{tok}`"))
}

fn num<T: std::str::FromStr>(tok: &str) -> Result<T, String> {
    tok.trim()
        .parse()
        .map_err(|_| format!("bad number `{}`", tok.trim()))
}

/// Splits `rest` into exactly `n` comma-separated operands.
fn operands(rest: &str, n: usize) -> Result<Vec<&str>, String> {
    let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
    if parts.len() == n {
        Ok(parts)
    } else {
        Err(format!("expected {n} operands in `{rest}`"))
    }
}

fn parse_annot(s: &str) -> Result<AliasAnnot, String> {
    if let Some(e) = s.strip_prefix("alat#") {
        return Ok(AliasAnnot::AlatSet { entry: num(e)? });
    }
    if let Some((bits, off)) = s.split_once('@') {
        let (p, c) = match bits {
            "PC" => (true, true),
            "P" => (true, false),
            "C" => (false, true),
            "-" => (false, false),
            _ => return Err(format!("bad P/C bits `{bits}`")),
        };
        return Ok(AliasAnnot::Smarq {
            p,
            c,
            offset: num(off)?,
        });
    }
    // Efficeon: `set#N`, `chk0xM`, `set#N,chk0xM`, or empty (neither).
    let mut set = None;
    let mut check_mask = 0;
    for part in s.split(',').filter(|p| !p.is_empty()) {
        if let Some(v) = part.strip_prefix("set#") {
            set = Some(num(v)?);
        } else if let Some(v) = part.strip_prefix("chk0x") {
            check_mask = u64::from_str_radix(v, 16).map_err(|_| format!("bad mask `{part}`"))?;
        } else {
            return Err(format!("bad annotation `{s}`"));
        }
    }
    Ok(AliasAnnot::Efficeon { set, check_mask })
}

/// Parses `rX, [rY+D]` with an optional trailing `{annotation}`, yielding
/// `(data reg, base, disp, annot)`.
fn parse_mem(rest: &str, prefix: char) -> Result<(u8, u8, i64, AliasAnnot), String> {
    let (addr_part, alias) = match rest.split_once('{') {
        Some((head, tail)) => {
            let inner = tail
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated annotation in `{rest}`"))?;
            (head.trim_end(), parse_annot(inner)?)
        }
        None => (rest, AliasAnnot::None),
    };
    let ops = operands(addr_part, 2)?;
    let data = reg(ops[0], prefix)?;
    let inner = ops[1]
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected [rN+D] address, got `{}`", ops[1]))?;
    let (b, d) = inner
        .split_once('+')
        .ok_or_else(|| format!("bad address `{inner}`"))?;
    Ok((data, reg(b, 'r')?, num(d)?, alias))
}

fn parse_op(s: &str) -> Result<VliwOp, String> {
    let s = s.trim();
    if s == "nop" {
        return Ok(VliwOp::Nop);
    }
    let (mn, rest) = s.split_once(' ').unwrap_or((s, ""));
    let rest = rest.trim();
    if let Some(op) = alu_from(mn) {
        let o = operands(rest, 3)?;
        return Ok(VliwOp::Alu {
            op,
            rd: reg(o[0], 'r')?,
            ra: reg(o[1], 'r')?,
            rb: reg(o[2], 'r')?,
        });
    }
    if let Some(op) = mn.strip_suffix('i').and_then(alu_from) {
        let o = operands(rest, 3)?;
        return Ok(VliwOp::AluImm {
            op,
            rd: reg(o[0], 'r')?,
            ra: reg(o[1], 'r')?,
            imm: num(o[2])?,
        });
    }
    if let Some(op) = fpu_from(mn) {
        let o = operands(rest, 3)?;
        return Ok(VliwOp::Fpu {
            op,
            fd: reg(o[0], 'f')?,
            fa: reg(o[1], 'f')?,
            fb: reg(o[2], 'f')?,
        });
    }
    if let Some(c) = mn.strip_prefix("exit") {
        let cond = match c.strip_prefix('.') {
            None if c.is_empty() => None,
            Some(name) => Some(cmp_from(name).ok_or_else(|| format!("bad condition `{name}`"))?),
            _ => return Err(format!("unknown op `{mn}`")),
        };
        let o = operands(rest, if cond.is_some() { 3 } else { 1 })?;
        let exit_id = num(o[0]
            .strip_prefix('#')
            .ok_or_else(|| format!("expected #exit-id, got `{}`", o[0]))?)?;
        return Ok(VliwOp::Exit {
            exit_id,
            cond: match cond {
                None => None,
                Some(op) => Some(CondExit {
                    op,
                    ra: reg(o[1], 'r')?,
                    rb: reg(o[2], 'r')?,
                }),
            },
        });
    }
    match mn {
        "iconst" => {
            let o = operands(rest, 2)?;
            Ok(VliwOp::IConst {
                rd: reg(o[0], 'r')?,
                value: num(o[1])?,
            })
        }
        "fconst" => {
            let o = operands(rest, 2)?;
            Ok(VliwOp::FConst {
                fd: reg(o[0], 'f')?,
                value: num(o[1])?,
            })
        }
        "mov" => {
            let o = operands(rest, 2)?;
            Ok(VliwOp::Copy {
                rd: reg(o[0], 'r')?,
                ra: reg(o[1], 'r')?,
            })
        }
        "fmov" => {
            let o = operands(rest, 2)?;
            Ok(VliwOp::FCopy {
                fd: reg(o[0], 'f')?,
                fa: reg(o[1], 'f')?,
            })
        }
        "itof" => {
            let o = operands(rest, 2)?;
            Ok(VliwOp::ItoF {
                fd: reg(o[0], 'f')?,
                ra: reg(o[1], 'r')?,
            })
        }
        "ftoi" => {
            let o = operands(rest, 2)?;
            Ok(VliwOp::FtoI {
                rd: reg(o[0], 'r')?,
                fa: reg(o[1], 'f')?,
            })
        }
        "ld" => {
            let (rd, base, disp, alias) = parse_mem(rest, 'r')?;
            Ok(VliwOp::Load {
                rd,
                base,
                disp,
                alias,
                tag: 0,
            })
        }
        "st" => {
            let (rs, base, disp, alias) = parse_mem(rest, 'r')?;
            Ok(VliwOp::Store {
                rs,
                base,
                disp,
                alias,
                tag: 0,
            })
        }
        "fld" => {
            let (fd, base, disp, alias) = parse_mem(rest, 'f')?;
            Ok(VliwOp::FLoad {
                fd,
                base,
                disp,
                alias,
                tag: 0,
            })
        }
        "fst" => {
            let (fs, base, disp, alias) = parse_mem(rest, 'f')?;
            Ok(VliwOp::FStore {
                fs,
                base,
                disp,
                alias,
                tag: 0,
            })
        }
        "alat.clear" => Ok(VliwOp::AlatClear {
            entry: num(rest
                .strip_prefix('#')
                .ok_or_else(|| format!("expected #entry, got `{rest}`"))?)?,
        }),
        "ar.rotate" => Ok(VliwOp::Rotate { amount: num(rest)? }),
        "ar.amov" => {
            let o = operands(rest, 2)?;
            Ok(VliwOp::Amov {
                src: num(o[0])?,
                dst: num(o[1])?,
            })
        }
        _ => Err(format!("unknown op `{mn}`")),
    }
}

/// Parses `exit #N -> guest block BM` / `exit #N -> halt` table lines.
fn parse_exit_target(line: &str, index: usize) -> Result<ExitTarget, String> {
    let (head, tail) = line
        .split_once("->")
        .ok_or_else(|| format!("bad exit line `{line}`"))?;
    let id: usize = num(head
        .trim()
        .strip_prefix("exit #")
        .ok_or_else(|| format!("bad exit head `{head}`"))?)?;
    if id != index {
        return Err(format!("exit #{id} out of order (expected #{index})"));
    }
    let tail = tail.trim();
    let guest_block = if tail == "halt" {
        None
    } else {
        Some(num(tail
            .strip_prefix("guest block B")
            .ok_or_else(|| format!("bad exit target `{tail}`"))?)?)
    };
    Ok(ExitTarget { guest_block })
}

/// Parses the disassembly of a [`VliwProgram`] back into a program.
///
/// Accepts exactly the output of the program's `Display` impl: numbered
/// bundle lines with `|`-separated slots followed by the exit table.
/// Memory-op tags are not part of the textual form and parse as `0`; an
/// empty bundle renders as `nop` and parses back as a one-`Nop` bundle.
///
/// # Errors
/// Returns a message naming the offending line on any syntax error.
pub fn parse_vliw(src: &str) -> Result<VliwProgram, String> {
    let mut program = VliwProgram::default();
    for raw in src.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |e: String| format!("line `{line}`: {e}");
        if line.starts_with("exit #") && line.contains("->") {
            let t = parse_exit_target(line, program.exits.len()).map_err(err)?;
            program.exits.push(t);
            continue;
        }
        let (index, ops) = line
            .split_once(':')
            .ok_or_else(|| err("missing bundle index".into()))?;
        let index: usize = num(index).map_err(err)?;
        if index != program.bundles.len() {
            return Err(err(format!(
                "bundle #{index} out of order (expected #{})",
                program.bundles.len()
            )));
        }
        if !program.exits.is_empty() {
            return Err(err("bundle after exit table".into()));
        }
        let ops = ops
            .split(" | ")
            .map(parse_op)
            .collect::<Result<Vec<_>, _>>()
            .map_err(err)?;
        program.bundles.push(Bundle { ops });
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_parse_back() {
        for (text, want) in [
            ("nop", VliwOp::Nop),
            (
                "subi r3, r4, -12",
                VliwOp::AluImm {
                    op: AluOp::Sub,
                    rd: 3,
                    ra: 4,
                    imm: -12,
                },
            ),
            (
                "ld r2, [r1+-8]  {PC@3}",
                VliwOp::Load {
                    rd: 2,
                    base: 1,
                    disp: -8,
                    alias: AliasAnnot::Smarq {
                        p: true,
                        c: true,
                        offset: 3,
                    },
                    tag: 0,
                },
            ),
            (
                "fst f7, [r2+16]  {set#2,chk0x5}",
                VliwOp::FStore {
                    fs: 7,
                    base: 2,
                    disp: 16,
                    alias: AliasAnnot::Efficeon {
                        set: Some(2),
                        check_mask: 5,
                    },
                    tag: 0,
                },
            ),
            (
                "exit.ge #1, r5, r6",
                VliwOp::Exit {
                    exit_id: 1,
                    cond: Some(CondExit {
                        op: CmpOp::Ge,
                        ra: 5,
                        rb: 6,
                    }),
                },
            ),
        ] {
            assert_eq!(parse_op(text).unwrap(), want, "{text}");
            // And the rendering is the canonical form we accept.
            assert_eq!(parse_op(&want.to_string()).unwrap(), want);
        }
    }

    #[test]
    fn malformed_ops_error_with_context() {
        for bad in [
            "frob r1, r2",
            "ld r1, r2+8",
            "exit.gt #0, r1, r2",
            "iconst r1",
            "ld r1, [r2+8]  {Q@0}",
        ] {
            assert!(parse_op(bad).is_err(), "`{bad}` should not parse");
        }
        assert!(parse_vliw("   0: nop\n   2: nop\n").is_err());
        assert!(parse_vliw("exit #1 -> halt\n").is_err());
    }
}
