//! Cycle-level in-order simulator with atomic-region semantics.
//!
//! The simulator executes one translated region ([`VliwProgram`]) against
//! the machine state: bundles issue in order (one per cycle at best), each
//! bundle stalling until all of its operands are ready (scoreboard). An
//! atomic region checkpoints the register files on entry and logs memory
//! writes; an alias exception rolls everything back (paper §1, Figure 1).

use crate::alias_hw::{AliasHardware, AliasViolation};
use crate::cache::DCache;
use crate::isa::{AliasAnnot, CondExit, MemRange, VliwOp, VliwProgram};
use crate::machine::MachineConfig;
use smarq_guest::Memory;
use std::error::Error;
use std::fmt;

/// The VLIW register state: 64 integer + 64 floating-point registers.
/// Guest architectural state lives in registers 0–31 of each file.
#[derive(Clone, Debug)]
pub struct VliwState {
    /// Integer register file.
    pub regs: [i64; 64],
    /// Floating-point register file.
    pub fregs: [f64; 64],
}

impl Default for VliwState {
    fn default() -> Self {
        VliwState {
            regs: [0; 64],
            fregs: [0.0; 64],
        }
    }
}

impl VliwState {
    /// Creates a zeroed state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads guest registers (32+32) into the low half of the files.
    pub fn load_guest(&mut self, regs: &[i64; 32], fregs: &[f64; 32]) {
        self.regs[..32].copy_from_slice(regs);
        self.fregs[..32].copy_from_slice(fregs);
    }

    /// Stores the low half of the files back to guest registers.
    pub fn store_guest(&self, regs: &mut [i64; 32], fregs: &mut [f64; 32]) {
        regs.copy_from_slice(&self.regs[..32]);
        fregs.copy_from_slice(&self.fregs[..32]);
    }
}

/// Precomputed register write-sets of a region, as bitmasks over the two
/// 64-entry files. The resident entry point
/// ([`Simulator::run_region_resident`]) checkpoints **only** the
/// registers a region can write: everything else is untouched by
/// execution, so restoring the masked subset on rollback reproduces the
/// entry state exactly. For small hot regions this turns the per-entry
/// 1 KiB state clone into a handful of register saves — the point of
/// keeping guest state resident across chained region executions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegionWriteMask {
    /// Bit `r` set: integer register `r` may be written.
    pub ints: u64,
    /// Bit `r` set: floating-point register `r` may be written.
    pub fps: u64,
}

impl RegionWriteMask {
    /// Every register of both files (the conservative full checkpoint).
    pub fn full() -> Self {
        RegionWriteMask {
            ints: u64::MAX,
            fps: u64::MAX,
        }
    }

    /// `true` if the mask covers both whole files.
    pub fn is_full(self) -> bool {
        self.ints == u64::MAX && self.fps == u64::MAX
    }

    /// Scans `program` once and collects every destination register.
    pub fn of(program: &VliwProgram) -> Self {
        let mut m = RegionWriteMask::default();
        for op in program.bundles.iter().flat_map(|b| &b.ops) {
            match *op {
                VliwOp::IConst { rd, .. }
                | VliwOp::Alu { rd, .. }
                | VliwOp::AluImm { rd, .. }
                | VliwOp::Copy { rd, .. }
                | VliwOp::FtoI { rd, .. }
                | VliwOp::Load { rd, .. } => m.ints |= 1u64 << rd,
                VliwOp::FConst { fd, .. }
                | VliwOp::Fpu { fd, .. }
                | VliwOp::FCopy { fd, .. }
                | VliwOp::ItoF { fd, .. }
                | VliwOp::FLoad { fd, .. } => m.fps |= 1u64 << fd,
                VliwOp::Store { .. }
                | VliwOp::FStore { .. }
                | VliwOp::AlatClear { .. }
                | VliwOp::Rotate { .. }
                | VliwOp::Amov { .. }
                | VliwOp::Exit { .. }
                | VliwOp::Nop => {}
            }
        }
        // Fault injection for testing the testers: drop one written
        // integer register from the mask, breaking the chain-boundary
        // obligation that the mask covers the region's write-set. On
        // rollback-free runs the mask only scopes checkpoints and
        // scoreboard clearing, so execution oracles cannot see the bug —
        // the static chain analyzer must.
        if smarq::fault::drop_boundary_enabled() && m.ints != 0 {
            m.ints &= !(1u64 << (63 - m.ints.leading_zeros()));
        }
        m
    }
}

/// One issued bundle, reported through [`Simulator::run_region_traced`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Index of the bundle in the program.
    pub bundle: usize,
    /// Cycle at which it issued.
    pub issue_cycle: u64,
    /// Number of non-NOP operations it carried.
    pub ops: u32,
}

/// Why region execution ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionOutcome {
    /// The region left through exit `exit_id`; state committed.
    Exited {
        /// Index into [`VliwProgram::exits`].
        exit_id: u32,
    },
    /// An alias exception: state rolled back, region must be re-optimized.
    AliasException(AliasViolation),
}

/// Per-region execution statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegionStats {
    /// Cycles consumed (including checkpoint and, on exception, rollback).
    pub cycles: u64,
    /// Bundles issued.
    pub bundles: u64,
    /// Non-NOP operations executed.
    pub ops: u64,
    /// Memory operations executed.
    pub mem_ops: u64,
    /// Memory operations carrying an alias annotation.
    pub alias_checks: u64,
    /// Alias entries actually examined by the hardware (an energy proxy).
    pub entries_scanned: u64,
}

/// Simulator errors that indicate translator bugs (not runtime events).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The region ran off the end without an unconditional exit.
    MissingExit,
    /// An `Exit` referenced an id outside the program's exit table.
    BadExitId {
        /// The offending id.
        exit_id: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingExit => f.write_str("region fell off the end without an exit"),
            SimError::BadExitId { exit_id } => write!(f, "exit id {exit_id} out of range"),
        }
    }
}

impl Error for SimError {}

/// The region simulator. Owns the machine configuration and the alias
/// hardware; borrows the state and memory per region execution.
pub struct Simulator<H> {
    config: MachineConfig,
    hw: H,
    dcache: Option<DCache>,
    /// Store undo log, recycled across region executions by the resident
    /// entry point so steady-state entries never allocate.
    undo_scratch: Vec<(u64, u64)>,
    /// Masked register checkpoint, recycled like `undo_scratch`.
    ckpt_ints: Vec<(u8, i64)>,
    /// Masked FP register checkpoint.
    ckpt_fps: Vec<(u8, f64)>,
    /// Integer scoreboard (cycle each register's value is ready), kept
    /// across region executions and re-zeroed per the region's write mask
    /// on exit — all-zero between regions, without a 1 KiB memset per
    /// entry.
    int_ready: [u64; 64],
    /// FP scoreboard, managed like `int_ready`.
    fp_ready: [u64; 64],
}

impl<H: AliasHardware> Simulator<H> {
    /// Creates a simulator for `config` using alias hardware `hw`.
    pub fn new(config: MachineConfig, hw: H) -> Self {
        Simulator {
            config,
            hw,
            dcache: config.dcache.map(DCache::new),
            undo_scratch: Vec::new(),
            ckpt_ints: Vec::new(),
            ckpt_fps: Vec::new(),
            int_ready: [0; 64],
            fp_ready: [0; 64],
        }
    }

    /// Restores the between-regions all-zero scoreboard invariant: only
    /// registers in `mask` can have been marked ready, so only they need
    /// clearing (a full mask keeps the plain memset).
    fn clear_scoreboard(&mut self, mask: RegionWriteMask) {
        if mask.is_full() {
            self.int_ready = [0; 64];
            self.fp_ready = [0; 64];
        } else {
            let mut m = mask.ints;
            while m != 0 {
                self.int_ready[m.trailing_zeros() as usize] = 0;
                m &= m - 1;
            }
            let mut m = mask.fps;
            while m != 0 {
                self.fp_ready[m.trailing_zeros() as usize] = 0;
                m &= m - 1;
            }
        }
    }

    /// Load-use latency of an access to `addr` (cache-dependent when a
    /// data cache is configured).
    fn load_latency(&mut self, addr: u64) -> u64 {
        match &mut self.dcache {
            Some(c) => u64::from(c.access(addr)),
            None => u64::from(self.config.lat_load),
        }
    }

    /// `(hits, misses)` of the data cache, if configured.
    pub fn dcache_stats(&self) -> Option<(u64, u64)> {
        self.dcache.as_ref().map(|c| c.stats())
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Immutable access to the alias hardware (for tests/statistics).
    pub fn hw(&self) -> &H {
        &self.hw
    }

    /// Executes one atomic region.
    ///
    /// On [`RegionOutcome::Exited`] the state and memory reflect the
    /// committed region. On [`RegionOutcome::AliasException`] both are
    /// restored to their pre-region contents and the statistics include
    /// the configured rollback penalty.
    ///
    /// # Errors
    /// [`SimError`] on malformed programs (translator bugs).
    pub fn run_region(
        &mut self,
        program: &VliwProgram,
        state: &mut VliwState,
        mem: &mut Memory,
    ) -> Result<(RegionOutcome, RegionStats), SimError> {
        self.run_region_core::<false>(program, RegionWriteMask::full(), state, mem, |_| {})
    }

    /// Resident entry point for chained dispatch: like
    /// [`Simulator::run_region`], but checkpoints only the registers in
    /// `mask` (the region's precomputed write-set, see
    /// [`RegionWriteMask::of`]) and recycles the store undo log across
    /// calls. Guest state stays wherever the caller keeps it — typically
    /// resident in `state` across many back-to-back region executions.
    ///
    /// # Errors
    /// [`SimError`] on malformed programs (translator bugs).
    pub fn run_region_resident(
        &mut self,
        program: &VliwProgram,
        mask: RegionWriteMask,
        state: &mut VliwState,
        mem: &mut Memory,
    ) -> Result<(RegionOutcome, RegionStats), SimError> {
        self.run_region_core::<false>(program, mask, state, mem, |_| {})
    }

    /// Like [`Simulator::run_region`], but invokes `trace` for every
    /// issued bundle — a cheap hook for debugging schedules and stalls.
    ///
    /// # Errors
    /// [`SimError`] on malformed programs (translator bugs).
    pub fn run_region_traced(
        &mut self,
        program: &VliwProgram,
        state: &mut VliwState,
        mem: &mut Memory,
        trace: impl FnMut(TraceEvent),
    ) -> Result<(RegionOutcome, RegionStats), SimError> {
        self.run_region_core::<true>(program, RegionWriteMask::full(), state, mem, trace)
    }

    fn run_region_core<const TRACED: bool>(
        &mut self,
        program: &VliwProgram,
        mask: RegionWriteMask,
        state: &mut VliwState,
        mem: &mut Memory,
        mut trace: impl FnMut(TraceEvent),
    ) -> Result<(RegionOutcome, RegionStats), SimError> {
        let cfg = self.config;
        let mut stats = RegionStats {
            cycles: cfg.checkpoint_cycles,
            ..RegionStats::default()
        };

        // Atomic region entry: checkpoint registers, reset detection state.
        // A full mask keeps the plain state clone (one memcpy); a region
        // write-mask saves just the registers the region can clobber.
        let full_checkpoint = if mask.is_full() {
            Some(state.clone())
        } else {
            self.ckpt_ints.clear();
            self.ckpt_fps.clear();
            let mut m = mask.ints;
            while m != 0 {
                let r = m.trailing_zeros() as usize;
                self.ckpt_ints.push((r as u8, state.regs[r]));
                m &= m - 1;
            }
            let mut m = mask.fps;
            while m != 0 {
                let r = m.trailing_zeros() as usize;
                self.ckpt_fps.push((r as u8, state.fregs[r]));
                m &= m - 1;
            }
            None
        };
        self.undo_scratch.clear();
        self.hw.reset();

        // Scoreboard: cycle at which each register's value is ready. The
        // arrays live in `self` and are all-zero on entry — every exit
        // path re-zeroes exactly the write-masked registers, so a tiny
        // chained region never pays a full-file sweep.
        let mut clock: u64 = cfg.checkpoint_cycles;

        let mut outcome: Option<RegionOutcome> = None;

        'bundles: for (bundle_index, bundle) in program.bundles.iter().enumerate() {
            // In-order issue: the bundle stalls until every operand of
            // every slot is ready.
            let mut issue = clock;
            for op in &bundle.ops {
                issue = stall_on_sources(issue, op, &self.int_ready, &self.fp_ready);
            }
            stats.bundles += 1;
            clock = issue + 1;
            if TRACED {
                trace(TraceEvent {
                    bundle: bundle_index,
                    issue_cycle: issue,
                    ops: bundle
                        .ops
                        .iter()
                        .filter(|o| !matches!(o, VliwOp::Nop))
                        .count() as u32,
                });
            }

            for op in &bundle.ops {
                if !matches!(op, VliwOp::Nop) {
                    stats.ops += 1;
                }
                match *op {
                    VliwOp::Nop => {}
                    VliwOp::IConst { rd, value } => {
                        state.regs[rd as usize] = value;
                        self.int_ready[rd as usize] = issue + u64::from(cfg.lat_int);
                    }
                    VliwOp::Alu { op, rd, ra, rb } => {
                        state.regs[rd as usize] =
                            op.apply(state.regs[ra as usize], state.regs[rb as usize]);
                        self.int_ready[rd as usize] = issue + u64::from(cfg.alu_latency(op));
                    }
                    VliwOp::AluImm { op, rd, ra, imm } => {
                        state.regs[rd as usize] = op.apply(state.regs[ra as usize], imm);
                        self.int_ready[rd as usize] = issue + u64::from(cfg.alu_latency(op));
                    }
                    VliwOp::Copy { rd, ra } => {
                        state.regs[rd as usize] = state.regs[ra as usize];
                        self.int_ready[rd as usize] = issue + u64::from(cfg.lat_int);
                    }
                    VliwOp::FConst { fd, value } => {
                        state.fregs[fd as usize] = value;
                        self.fp_ready[fd as usize] = issue + u64::from(cfg.lat_int);
                    }
                    VliwOp::Fpu { op, fd, fa, fb } => {
                        state.fregs[fd as usize] =
                            op.apply(state.fregs[fa as usize], state.fregs[fb as usize]);
                        self.fp_ready[fd as usize] = issue + u64::from(cfg.fpu_latency(op));
                    }
                    VliwOp::FCopy { fd, fa } => {
                        state.fregs[fd as usize] = state.fregs[fa as usize];
                        self.fp_ready[fd as usize] = issue + u64::from(cfg.lat_int);
                    }
                    VliwOp::ItoF { fd, ra } => {
                        state.fregs[fd as usize] = state.regs[ra as usize] as f64;
                        self.fp_ready[fd as usize] = issue + u64::from(cfg.lat_int);
                    }
                    VliwOp::FtoI { rd, fa } => {
                        state.regs[rd as usize] = state.fregs[fa as usize] as i64;
                        self.int_ready[rd as usize] = issue + u64::from(cfg.lat_int);
                    }
                    VliwOp::Load {
                        rd,
                        base,
                        disp,
                        alias,
                        tag,
                    } => {
                        let addr = (state.regs[base as usize].wrapping_add(disp)) as u64;
                        stats.mem_ops += 1;
                        if let Err(v) = self.mem_hook(alias, addr, true, tag, &mut stats) {
                            outcome = Some(RegionOutcome::AliasException(v));
                            break 'bundles;
                        }
                        state.regs[rd as usize] = mem.read(addr) as i64;
                        self.int_ready[rd as usize] = issue + self.load_latency(addr);
                    }
                    VliwOp::FLoad {
                        fd,
                        base,
                        disp,
                        alias,
                        tag,
                    } => {
                        let addr = (state.regs[base as usize].wrapping_add(disp)) as u64;
                        stats.mem_ops += 1;
                        if let Err(v) = self.mem_hook(alias, addr, true, tag, &mut stats) {
                            outcome = Some(RegionOutcome::AliasException(v));
                            break 'bundles;
                        }
                        state.fregs[fd as usize] = mem.read_f64(addr);
                        self.fp_ready[fd as usize] = issue + self.load_latency(addr);
                    }
                    VliwOp::Store {
                        rs,
                        base,
                        disp,
                        alias,
                        tag,
                    } => {
                        let addr = (state.regs[base as usize].wrapping_add(disp)) as u64;
                        stats.mem_ops += 1;
                        if let Err(v) = self.mem_hook(alias, addr, false, tag, &mut stats) {
                            outcome = Some(RegionOutcome::AliasException(v));
                            break 'bundles;
                        }
                        self.undo_scratch.push((addr, mem.read(addr)));
                        mem.write(addr, state.regs[rs as usize] as u64);
                        let _ = self.load_latency(addr); // write-allocate
                    }
                    VliwOp::FStore {
                        fs,
                        base,
                        disp,
                        alias,
                        tag,
                    } => {
                        let addr = (state.regs[base as usize].wrapping_add(disp)) as u64;
                        stats.mem_ops += 1;
                        if let Err(v) = self.mem_hook(alias, addr, false, tag, &mut stats) {
                            outcome = Some(RegionOutcome::AliasException(v));
                            break 'bundles;
                        }
                        self.undo_scratch.push((addr, mem.read(addr)));
                        mem.write_f64(addr, state.fregs[fs as usize]);
                        let _ = self.load_latency(addr); // write-allocate
                    }
                    VliwOp::AlatClear { entry } => self.hw.alat_clear(entry),
                    VliwOp::Rotate { amount } => self.hw.rotate(amount),
                    VliwOp::Amov { src, dst } => self.hw.amov(src, dst),
                    VliwOp::Exit { exit_id, cond } => {
                        if exit_id as usize >= program.exits.len() {
                            self.clear_scoreboard(mask);
                            return Err(SimError::BadExitId { exit_id });
                        }
                        let take = match cond {
                            None => true,
                            Some(CondExit { op, ra, rb }) => {
                                op.eval(state.regs[ra as usize], state.regs[rb as usize])
                            }
                        };
                        if take {
                            outcome = Some(RegionOutcome::Exited { exit_id });
                            break 'bundles;
                        }
                    }
                }
            }
        }

        stats.cycles = clock.max(stats.cycles);
        self.clear_scoreboard(mask);
        match outcome {
            Some(RegionOutcome::Exited { exit_id }) => {
                // Commit: keep state and memory.
                Ok((RegionOutcome::Exited { exit_id }, stats))
            }
            Some(RegionOutcome::AliasException(v)) => {
                // Rollback: restore registers and memory, pay the penalty.
                match full_checkpoint {
                    Some(cp) => *state = cp,
                    None => {
                        for &(r, v) in &self.ckpt_ints {
                            state.regs[r as usize] = v;
                        }
                        for &(r, v) in &self.ckpt_fps {
                            state.fregs[r as usize] = v;
                        }
                    }
                }
                for i in (0..self.undo_scratch.len()).rev() {
                    let (addr, old) = self.undo_scratch[i];
                    mem.write(addr, old);
                }
                self.hw.reset();
                stats.cycles += self.config.rollback_cycles;
                Ok((RegionOutcome::AliasException(v), stats))
            }
            None => Err(SimError::MissingExit),
        }
    }

    fn mem_hook(
        &mut self,
        alias: AliasAnnot,
        addr: u64,
        is_load: bool,
        tag: u32,
        stats: &mut RegionStats,
    ) -> Result<(), AliasViolation> {
        if !matches!(alias, AliasAnnot::None) {
            stats.alias_checks += 1;
        }
        let examined = self
            .hw
            .mem_access(alias, MemRange::word(addr), is_load, tag)?;
        stats.entries_scanned += u64::from(examined);
        Ok(())
    }
}

/// Raises `issue` to the ready time of every source register of `op` —
/// one flat match on the hot path instead of the iterator-based
/// [`int_sources`]/[`fp_sources`] pair, which the unit tests keep it
/// honest against.
#[inline]
fn stall_on_sources(mut issue: u64, op: &VliwOp, ir: &[u64; 64], fr: &[u64; 64]) -> u64 {
    match *op {
        VliwOp::Alu { ra, rb, .. } => issue = issue.max(ir[ra as usize]).max(ir[rb as usize]),
        VliwOp::AluImm { ra, .. } | VliwOp::Copy { ra, .. } | VliwOp::ItoF { ra, .. } => {
            issue = issue.max(ir[ra as usize]);
        }
        VliwOp::Load { base, .. } | VliwOp::FLoad { base, .. } => {
            issue = issue.max(ir[base as usize]);
        }
        VliwOp::Store { rs, base, .. } => {
            issue = issue.max(ir[rs as usize]).max(ir[base as usize]);
        }
        VliwOp::FStore { fs, base, .. } => {
            issue = issue.max(ir[base as usize]).max(fr[fs as usize]);
        }
        VliwOp::Exit {
            cond: Some(CondExit { ra, rb, .. }),
            ..
        } => issue = issue.max(ir[ra as usize]).max(ir[rb as usize]),
        VliwOp::Fpu { fa, fb, .. } => issue = issue.max(fr[fa as usize]).max(fr[fb as usize]),
        VliwOp::FCopy { fa, .. } | VliwOp::FtoI { fa, .. } => issue = issue.max(fr[fa as usize]),
        VliwOp::Nop
        | VliwOp::IConst { .. }
        | VliwOp::FConst { .. }
        | VliwOp::AlatClear { .. }
        | VliwOp::Rotate { .. }
        | VliwOp::Amov { .. }
        | VliwOp::Exit { cond: None, .. } => {}
    }
    issue
}

/// Integer source registers of an op (the readable reference form of
/// [`stall_on_sources`]; kept as the differential oracle for the tests).
#[cfg(test)]
fn int_sources(op: &VliwOp) -> impl Iterator<Item = u8> {
    let mut v: [Option<u8>; 2] = [None, None];
    match *op {
        VliwOp::Alu { ra, rb, .. } => v = [Some(ra), Some(rb)],
        VliwOp::AluImm { ra, .. } | VliwOp::Copy { ra, .. } | VliwOp::ItoF { ra, .. } => {
            v[0] = Some(ra)
        }
        VliwOp::Load { base, .. } | VliwOp::FLoad { base, .. } => v[0] = Some(base),
        VliwOp::Store { rs, base, .. } => v = [Some(rs), Some(base)],
        VliwOp::FStore { base, .. } => v[0] = Some(base),
        VliwOp::Exit {
            cond: Some(CondExit { ra, rb, .. }),
            ..
        } => v = [Some(ra), Some(rb)],
        _ => {}
    }
    v.into_iter().flatten()
}

/// FP source registers of an op (reference form, see [`int_sources`]).
#[cfg(test)]
fn fp_sources(op: &VliwOp) -> impl Iterator<Item = u8> {
    let mut v: [Option<u8>; 2] = [None, None];
    match *op {
        VliwOp::Fpu { fa, fb, .. } => v = [Some(fa), Some(fb)],
        VliwOp::FCopy { fa, .. } | VliwOp::FtoI { fa, .. } => v[0] = Some(fa),
        VliwOp::FStore { fs, .. } => v[0] = Some(fs),
        _ => {}
    }
    v.into_iter().flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias_hw::{NoAliasHw, SmarqQueueHw};
    use crate::isa::{Bundle, ExitTarget};
    use smarq_guest::AluOp;

    fn exit_program(bundles: Vec<Bundle>) -> VliwProgram {
        let mut bundles = bundles;
        bundles.push(Bundle {
            ops: vec![VliwOp::Exit {
                exit_id: 0,
                cond: None,
            }],
        });
        VliwProgram {
            bundles,
            exits: vec![ExitTarget {
                guest_block: Some(0),
            }],
        }
    }

    #[test]
    fn arithmetic_and_commit() {
        let p = exit_program(vec![
            Bundle {
                ops: vec![
                    VliwOp::IConst { rd: 1, value: 6 },
                    VliwOp::IConst { rd: 2, value: 7 },
                ],
            },
            Bundle {
                ops: vec![VliwOp::Alu {
                    op: AluOp::Mul,
                    rd: 3,
                    ra: 1,
                    rb: 2,
                }],
            },
        ]);
        let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        let (out, stats) = sim.run_region(&p, &mut st, &mut mem).unwrap();
        assert_eq!(out, RegionOutcome::Exited { exit_id: 0 });
        assert_eq!(st.regs[3], 42);
        assert!(stats.cycles >= 3);
        assert_eq!(stats.bundles, 3);
    }

    #[test]
    fn scoreboard_stalls_on_load_use() {
        // ld r1=[r2]; add r3 = r1+r1 must wait out the load latency.
        let p = exit_program(vec![
            Bundle {
                ops: vec![VliwOp::Load {
                    rd: 1,
                    base: 2,
                    disp: 0,
                    alias: AliasAnnot::None,
                    tag: 0,
                }],
            },
            Bundle {
                ops: vec![VliwOp::Alu {
                    op: AluOp::Add,
                    rd: 3,
                    ra: 1,
                    rb: 1,
                }],
            },
        ]);
        let cfg = MachineConfig::default();
        let mut sim = Simulator::new(cfg, NoAliasHw);
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        mem.write(0, 21);
        let (_, stats) = sim.run_region(&p, &mut st, &mut mem).unwrap();
        assert_eq!(st.regs[3], 42);
        // checkpoint(1) + load issues at 1 + dependent add waits until
        // 1 + lat_load, then exit: strictly more than 4 cycles.
        assert!(
            stats.cycles >= u64::from(cfg.lat_load) + 2,
            "cycles = {}",
            stats.cycles
        );
    }

    #[test]
    fn conditional_exit_taken_and_not_taken() {
        let mk = |r1: i64| {
            let p = VliwProgram {
                bundles: vec![
                    Bundle {
                        ops: vec![VliwOp::IConst { rd: 1, value: r1 }],
                    },
                    Bundle {
                        ops: vec![VliwOp::Exit {
                            exit_id: 1,
                            cond: Some(CondExit {
                                op: smarq_guest::CmpOp::Ne,
                                ra: 1,
                                rb: 0,
                            }),
                        }],
                    },
                    Bundle {
                        ops: vec![VliwOp::Exit {
                            exit_id: 0,
                            cond: None,
                        }],
                    },
                ],
                exits: vec![
                    ExitTarget {
                        guest_block: Some(10),
                    },
                    ExitTarget {
                        guest_block: Some(20),
                    },
                ],
            };
            let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
            let mut st = VliwState::new();
            let mut mem = Memory::new();
            sim.run_region(&p, &mut st, &mut mem).unwrap().0
        };
        assert_eq!(mk(5), RegionOutcome::Exited { exit_id: 1 });
        assert_eq!(mk(0), RegionOutcome::Exited { exit_id: 0 });
    }

    #[test]
    fn alias_exception_rolls_back_state_and_memory() {
        // A hoisted load (P) then an aliasing store (C): exception; the
        // store before it must be undone and registers restored.
        let p = exit_program(vec![
            Bundle {
                ops: vec![VliwOp::IConst {
                    rd: 1,
                    value: 0x100,
                }],
            },
            Bundle {
                ops: vec![VliwOp::Load {
                    rd: 2,
                    base: 1,
                    disp: 0,
                    alias: AliasAnnot::Smarq {
                        p: true,
                        c: false,
                        offset: 0,
                    },
                    tag: 1,
                }],
            },
            Bundle {
                // An unrelated store that will need undoing.
                ops: vec![VliwOp::Store {
                    rs: 1,
                    base: 1,
                    disp: 64,
                    alias: AliasAnnot::None,
                    tag: 2,
                }],
            },
            Bundle {
                // Aliasing store: checks offset 0 and faults.
                ops: vec![VliwOp::Store {
                    rs: 1,
                    base: 1,
                    disp: 0,
                    alias: AliasAnnot::Smarq {
                        p: false,
                        c: true,
                        offset: 0,
                    },
                    tag: 3,
                }],
            },
        ]);
        let cfg = MachineConfig::default();
        let mut sim = Simulator::new(cfg, SmarqQueueHw::new(cfg.num_alias_regs));
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        mem.write(0x100, 7);
        let mem_before = mem.clone();
        let (out, stats) = sim.run_region(&p, &mut st, &mut mem).unwrap();
        match out {
            RegionOutcome::AliasException(v) => {
                assert_eq!(v.checker_tag, 3);
                assert_eq!(v.producer_tag, 1);
            }
            other => panic!("expected exception, got {other:?}"),
        }
        assert_eq!(st.regs[1], 0, "registers rolled back");
        assert_eq!(st.regs[2], 0);
        assert_eq!(mem, mem_before, "memory rolled back");
        assert!(stats.cycles >= cfg.rollback_cycles);
    }

    /// The masked-checkpoint resident path must roll back to exactly the
    /// same state as the full clone, and the write-mask must cover every
    /// destination register of the region.
    #[test]
    fn resident_rollback_matches_full_checkpoint() {
        let p = exit_program(vec![
            Bundle {
                ops: vec![VliwOp::IConst {
                    rd: 1,
                    value: 0x100,
                }],
            },
            Bundle {
                ops: vec![VliwOp::Load {
                    rd: 2,
                    base: 1,
                    disp: 0,
                    alias: AliasAnnot::Smarq {
                        p: true,
                        c: false,
                        offset: 0,
                    },
                    tag: 1,
                }],
            },
            Bundle {
                ops: vec![VliwOp::Store {
                    rs: 1,
                    base: 1,
                    disp: 64,
                    alias: AliasAnnot::None,
                    tag: 2,
                }],
            },
            Bundle {
                ops: vec![VliwOp::Store {
                    rs: 1,
                    base: 1,
                    disp: 0,
                    alias: AliasAnnot::Smarq {
                        p: false,
                        c: true,
                        offset: 0,
                    },
                    tag: 3,
                }],
            },
        ]);
        let mask = RegionWriteMask::of(&p);
        assert_eq!(mask.ints, (1 << 1) | (1 << 2), "r1 and r2 are written");
        assert_eq!(mask.fps, 0);
        assert!(!mask.is_full());

        let cfg = MachineConfig::default();
        let mut sim = Simulator::new(cfg, SmarqQueueHw::new(cfg.num_alias_regs));
        let mut st = VliwState::new();
        // Resident junk outside the guest window must survive the region
        // untouched (it is not in the write-set, so it is not saved).
        st.regs[40] = -77;
        st.fregs[41] = 3.5;
        let mut mem = Memory::new();
        mem.write(0x100, 7);
        let st_before = st.clone();
        let mem_before = mem.clone();
        // Run twice through the same simulator: scratch reuse must not
        // leak any state between executions.
        for _ in 0..2 {
            let (out, _) = sim
                .run_region_resident(&p, mask, &mut st, &mut mem)
                .unwrap();
            assert!(matches!(out, RegionOutcome::AliasException(_)));
            assert_eq!(st.regs, st_before.regs, "masked rollback is exact");
            assert_eq!(st.fregs, st_before.fregs);
            assert_eq!(mem, mem_before, "store undo log replayed");
        }
    }

    /// A committed resident execution leaves exactly the registers in the
    /// write mask updated.
    #[test]
    fn resident_commit_updates_only_written_registers() {
        let p = exit_program(vec![Bundle {
            ops: vec![
                VliwOp::IConst { rd: 3, value: 9 },
                VliwOp::FConst { fd: 2, value: 1.5 },
            ],
        }]);
        let mask = RegionWriteMask::of(&p);
        assert_eq!(mask.ints, 1 << 3);
        assert_eq!(mask.fps, 1 << 2);
        let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
        let mut st = VliwState::new();
        st.regs[5] = 123;
        let mut mem = Memory::new();
        let (out, _) = sim
            .run_region_resident(&p, mask, &mut st, &mut mem)
            .unwrap();
        assert_eq!(out, RegionOutcome::Exited { exit_id: 0 });
        assert_eq!(st.regs[3], 9);
        assert_eq!(st.fregs[2], 1.5);
        assert_eq!(st.regs[5], 123, "unwritten registers keep their values");
    }

    #[test]
    fn missing_exit_is_a_translator_bug() {
        let p = VliwProgram {
            bundles: vec![Bundle {
                ops: vec![VliwOp::IConst { rd: 1, value: 1 }],
            }],
            exits: vec![],
        };
        let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        assert_eq!(
            sim.run_region(&p, &mut st, &mut mem).unwrap_err(),
            SimError::MissingExit
        );
    }

    #[test]
    fn bad_exit_id_reported() {
        let p = VliwProgram {
            bundles: vec![Bundle {
                ops: vec![VliwOp::Exit {
                    exit_id: 3,
                    cond: None,
                }],
            }],
            exits: vec![],
        };
        let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        assert_eq!(
            sim.run_region(&p, &mut st, &mut mem).unwrap_err(),
            SimError::BadExitId { exit_id: 3 }
        );
    }

    #[test]
    fn guest_state_roundtrip() {
        let mut st = VliwState::new();
        let mut regs = [0i64; 32];
        let mut fregs = [0f64; 32];
        regs[5] = 99;
        fregs[7] = 2.5;
        st.load_guest(&regs, &fregs);
        assert_eq!(st.regs[5], 99);
        let mut r2 = [0i64; 32];
        let mut f2 = [0f64; 32];
        st.store_guest(&mut r2, &mut f2);
        assert_eq!(r2, regs);
        assert_eq!(f2, fregs);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::alias_hw::NoAliasHw;
    use crate::isa::{Bundle, ExitTarget};

    #[test]
    fn trace_reports_every_bundle_with_monotone_cycles() {
        let p = VliwProgram {
            bundles: vec![
                Bundle {
                    ops: vec![VliwOp::IConst { rd: 1, value: 2 }],
                },
                Bundle {
                    ops: vec![VliwOp::Alu {
                        op: smarq_guest::AluOp::Mul,
                        rd: 2,
                        ra: 1,
                        rb: 1,
                    }],
                },
                Bundle {
                    ops: vec![VliwOp::Exit {
                        exit_id: 0,
                        cond: None,
                    }],
                },
            ],
            exits: vec![ExitTarget {
                guest_block: Some(0),
            }],
        };
        let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        let mut events = Vec::new();
        sim.run_region_traced(&p, &mut st, &mut mem, |e| events.push(e))
            .unwrap();
        assert_eq!(events.len(), 3);
        assert!(events
            .windows(2)
            .all(|w| w[0].issue_cycle < w[1].issue_cycle));
        assert_eq!(events[0].ops, 1);
        assert_eq!(events[0].bundle, 0);
    }

    #[test]
    fn trace_stops_at_taken_exit() {
        let p = VliwProgram {
            bundles: vec![
                Bundle {
                    ops: vec![VliwOp::Exit {
                        exit_id: 0,
                        cond: None,
                    }],
                },
                Bundle {
                    ops: vec![VliwOp::IConst { rd: 1, value: 1 }],
                },
            ],
            exits: vec![ExitTarget { guest_block: None }],
        };
        let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        let mut n = 0;
        sim.run_region_traced(&p, &mut st, &mut mem, |_| n += 1)
            .unwrap();
        assert_eq!(n, 1, "bundles after the taken exit never issue");
    }

    #[test]
    fn stall_on_sources_matches_reference_source_sets() {
        use smarq_guest::{AluOp, CmpOp, FpuOp};
        // Every scoreboard slot gets a distinct ready time so any missed
        // or extra source register changes the computed issue cycle.
        let mut ir = [0u64; 64];
        let mut fr = [0u64; 64];
        for i in 0..64 {
            ir[i] = 1_000 + i as u64;
            fr[i] = 2_000 + i as u64;
        }
        let annot = AliasAnnot::None;
        let ops = [
            VliwOp::Nop,
            VliwOp::IConst { rd: 1, value: 7 },
            VliwOp::Alu {
                op: AluOp::Add,
                rd: 2,
                ra: 3,
                rb: 4,
            },
            VliwOp::AluImm {
                op: AluOp::Mul,
                rd: 2,
                ra: 5,
                imm: 3,
            },
            VliwOp::Copy { rd: 1, ra: 6 },
            VliwOp::FConst { fd: 1, value: 1.5 },
            VliwOp::Fpu {
                op: FpuOp::Add,
                fd: 1,
                fa: 2,
                fb: 3,
            },
            VliwOp::FCopy { fd: 1, fa: 4 },
            VliwOp::ItoF { fd: 1, ra: 7 },
            VliwOp::FtoI { rd: 1, fa: 5 },
            VliwOp::Load {
                rd: 1,
                base: 8,
                disp: 0,
                alias: annot,
                tag: 0,
            },
            VliwOp::Store {
                rs: 9,
                base: 10,
                disp: 0,
                alias: annot,
                tag: 0,
            },
            VliwOp::FLoad {
                fd: 1,
                base: 11,
                disp: 0,
                alias: annot,
                tag: 0,
            },
            VliwOp::FStore {
                fs: 6,
                base: 12,
                disp: 0,
                alias: annot,
                tag: 0,
            },
            VliwOp::AlatClear { entry: 0 },
            VliwOp::Rotate { amount: 1 },
            VliwOp::Amov { src: 0, dst: 1 },
            VliwOp::Exit {
                exit_id: 0,
                cond: None,
            },
            VliwOp::Exit {
                exit_id: 0,
                cond: Some(CondExit {
                    op: CmpOp::Lt,
                    ra: 13,
                    rb: 14,
                }),
            },
        ];
        for op in &ops {
            let fast = stall_on_sources(3, op, &ir, &fr);
            let reference = int_sources(op)
                .map(|r| ir[r as usize])
                .chain(fp_sources(op).map(|r| fr[r as usize]))
                .fold(3u64, u64::max);
            assert_eq!(fast, reference, "issue stall differs for {op:?}");
        }
    }
}
