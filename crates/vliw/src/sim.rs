//! Cycle-level in-order simulator with atomic-region semantics.
//!
//! The simulator executes one translated region ([`VliwProgram`]) against
//! the machine state: bundles issue in order (one per cycle at best), each
//! bundle stalling until all of its operands are ready (scoreboard). An
//! atomic region checkpoints the register files on entry and logs memory
//! writes; an alias exception rolls everything back (paper §1, Figure 1).

use crate::alias_hw::{AliasHardware, AliasViolation};
use crate::cache::DCache;
use crate::isa::{AliasAnnot, CondExit, MemRange, VliwOp, VliwProgram};
use crate::machine::MachineConfig;
use smarq_guest::Memory;
use std::error::Error;
use std::fmt;

/// The VLIW register state: 64 integer + 64 floating-point registers.
/// Guest architectural state lives in registers 0–31 of each file.
#[derive(Clone, Debug)]
pub struct VliwState {
    /// Integer register file.
    pub regs: [i64; 64],
    /// Floating-point register file.
    pub fregs: [f64; 64],
}

impl Default for VliwState {
    fn default() -> Self {
        VliwState {
            regs: [0; 64],
            fregs: [0.0; 64],
        }
    }
}

impl VliwState {
    /// Creates a zeroed state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads guest registers (32+32) into the low half of the files.
    pub fn load_guest(&mut self, regs: &[i64; 32], fregs: &[f64; 32]) {
        self.regs[..32].copy_from_slice(regs);
        self.fregs[..32].copy_from_slice(fregs);
    }

    /// Stores the low half of the files back to guest registers.
    pub fn store_guest(&self, regs: &mut [i64; 32], fregs: &mut [f64; 32]) {
        regs.copy_from_slice(&self.regs[..32]);
        fregs.copy_from_slice(&self.fregs[..32]);
    }
}

/// One issued bundle, reported through [`Simulator::run_region_traced`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Index of the bundle in the program.
    pub bundle: usize,
    /// Cycle at which it issued.
    pub issue_cycle: u64,
    /// Number of non-NOP operations it carried.
    pub ops: u32,
}

/// Why region execution ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionOutcome {
    /// The region left through exit `exit_id`; state committed.
    Exited {
        /// Index into [`VliwProgram::exits`].
        exit_id: u32,
    },
    /// An alias exception: state rolled back, region must be re-optimized.
    AliasException(AliasViolation),
}

/// Per-region execution statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegionStats {
    /// Cycles consumed (including checkpoint and, on exception, rollback).
    pub cycles: u64,
    /// Bundles issued.
    pub bundles: u64,
    /// Non-NOP operations executed.
    pub ops: u64,
    /// Memory operations executed.
    pub mem_ops: u64,
    /// Memory operations carrying an alias annotation.
    pub alias_checks: u64,
    /// Alias entries actually examined by the hardware (an energy proxy).
    pub entries_scanned: u64,
}

/// Simulator errors that indicate translator bugs (not runtime events).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The region ran off the end without an unconditional exit.
    MissingExit,
    /// An `Exit` referenced an id outside the program's exit table.
    BadExitId {
        /// The offending id.
        exit_id: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingExit => f.write_str("region fell off the end without an exit"),
            SimError::BadExitId { exit_id } => write!(f, "exit id {exit_id} out of range"),
        }
    }
}

impl Error for SimError {}

/// The region simulator. Owns the machine configuration and the alias
/// hardware; borrows the state and memory per region execution.
pub struct Simulator<H> {
    config: MachineConfig,
    hw: H,
    dcache: Option<DCache>,
}

impl<H: AliasHardware> Simulator<H> {
    /// Creates a simulator for `config` using alias hardware `hw`.
    pub fn new(config: MachineConfig, hw: H) -> Self {
        Simulator {
            config,
            hw,
            dcache: config.dcache.map(DCache::new),
        }
    }

    /// Load-use latency of an access to `addr` (cache-dependent when a
    /// data cache is configured).
    fn load_latency(&mut self, addr: u64) -> u64 {
        match &mut self.dcache {
            Some(c) => u64::from(c.access(addr)),
            None => u64::from(self.config.lat_load),
        }
    }

    /// `(hits, misses)` of the data cache, if configured.
    pub fn dcache_stats(&self) -> Option<(u64, u64)> {
        self.dcache.as_ref().map(|c| c.stats())
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Immutable access to the alias hardware (for tests/statistics).
    pub fn hw(&self) -> &H {
        &self.hw
    }

    /// Executes one atomic region.
    ///
    /// On [`RegionOutcome::Exited`] the state and memory reflect the
    /// committed region. On [`RegionOutcome::AliasException`] both are
    /// restored to their pre-region contents and the statistics include
    /// the configured rollback penalty.
    ///
    /// # Errors
    /// [`SimError`] on malformed programs (translator bugs).
    pub fn run_region(
        &mut self,
        program: &VliwProgram,
        state: &mut VliwState,
        mem: &mut Memory,
    ) -> Result<(RegionOutcome, RegionStats), SimError> {
        self.run_region_traced(program, state, mem, |_| {})
    }

    /// Like [`Simulator::run_region`], but invokes `trace` for every
    /// issued bundle — a cheap hook for debugging schedules and stalls.
    ///
    /// # Errors
    /// [`SimError`] on malformed programs (translator bugs).
    pub fn run_region_traced(
        &mut self,
        program: &VliwProgram,
        state: &mut VliwState,
        mem: &mut Memory,
        mut trace: impl FnMut(TraceEvent),
    ) -> Result<(RegionOutcome, RegionStats), SimError> {
        let cfg = self.config;
        let mut stats = RegionStats {
            cycles: cfg.checkpoint_cycles,
            ..RegionStats::default()
        };

        // Atomic region entry: checkpoint registers, reset detection state.
        let checkpoint = state.clone();
        let mut undo_log: Vec<(u64, u64)> = Vec::new();
        self.hw.reset();

        // Scoreboard: cycle at which each register's value is ready.
        let mut int_ready = [0u64; 64];
        let mut fp_ready = [0u64; 64];
        let mut clock: u64 = cfg.checkpoint_cycles;

        let mut outcome: Option<RegionOutcome> = None;

        'bundles: for (bundle_index, bundle) in program.bundles.iter().enumerate() {
            // In-order issue: the bundle stalls until every operand of
            // every slot is ready.
            let mut issue = clock;
            for op in &bundle.ops {
                for r in int_sources(op) {
                    issue = issue.max(int_ready[r as usize]);
                }
                for r in fp_sources(op) {
                    issue = issue.max(fp_ready[r as usize]);
                }
            }
            stats.bundles += 1;
            clock = issue + 1;
            trace(TraceEvent {
                bundle: bundle_index,
                issue_cycle: issue,
                ops: bundle
                    .ops
                    .iter()
                    .filter(|o| !matches!(o, VliwOp::Nop))
                    .count() as u32,
            });

            for op in &bundle.ops {
                if !matches!(op, VliwOp::Nop) {
                    stats.ops += 1;
                }
                match *op {
                    VliwOp::Nop => {}
                    VliwOp::IConst { rd, value } => {
                        state.regs[rd as usize] = value;
                        int_ready[rd as usize] = issue + u64::from(cfg.lat_int);
                    }
                    VliwOp::Alu { op, rd, ra, rb } => {
                        state.regs[rd as usize] =
                            op.apply(state.regs[ra as usize], state.regs[rb as usize]);
                        int_ready[rd as usize] = issue + u64::from(cfg.alu_latency(op));
                    }
                    VliwOp::AluImm { op, rd, ra, imm } => {
                        state.regs[rd as usize] = op.apply(state.regs[ra as usize], imm);
                        int_ready[rd as usize] = issue + u64::from(cfg.alu_latency(op));
                    }
                    VliwOp::Copy { rd, ra } => {
                        state.regs[rd as usize] = state.regs[ra as usize];
                        int_ready[rd as usize] = issue + u64::from(cfg.lat_int);
                    }
                    VliwOp::FConst { fd, value } => {
                        state.fregs[fd as usize] = value;
                        fp_ready[fd as usize] = issue + u64::from(cfg.lat_int);
                    }
                    VliwOp::Fpu { op, fd, fa, fb } => {
                        state.fregs[fd as usize] =
                            op.apply(state.fregs[fa as usize], state.fregs[fb as usize]);
                        fp_ready[fd as usize] = issue + u64::from(cfg.fpu_latency(op));
                    }
                    VliwOp::FCopy { fd, fa } => {
                        state.fregs[fd as usize] = state.fregs[fa as usize];
                        fp_ready[fd as usize] = issue + u64::from(cfg.lat_int);
                    }
                    VliwOp::ItoF { fd, ra } => {
                        state.fregs[fd as usize] = state.regs[ra as usize] as f64;
                        fp_ready[fd as usize] = issue + u64::from(cfg.lat_int);
                    }
                    VliwOp::FtoI { rd, fa } => {
                        state.regs[rd as usize] = state.fregs[fa as usize] as i64;
                        int_ready[rd as usize] = issue + u64::from(cfg.lat_int);
                    }
                    VliwOp::Load {
                        rd,
                        base,
                        disp,
                        alias,
                        tag,
                    } => {
                        let addr = (state.regs[base as usize].wrapping_add(disp)) as u64;
                        stats.mem_ops += 1;
                        if let Err(v) = self.mem_hook(alias, addr, true, tag, &mut stats) {
                            outcome = Some(RegionOutcome::AliasException(v));
                            break 'bundles;
                        }
                        state.regs[rd as usize] = mem.read(addr) as i64;
                        int_ready[rd as usize] = issue + self.load_latency(addr);
                    }
                    VliwOp::FLoad {
                        fd,
                        base,
                        disp,
                        alias,
                        tag,
                    } => {
                        let addr = (state.regs[base as usize].wrapping_add(disp)) as u64;
                        stats.mem_ops += 1;
                        if let Err(v) = self.mem_hook(alias, addr, true, tag, &mut stats) {
                            outcome = Some(RegionOutcome::AliasException(v));
                            break 'bundles;
                        }
                        state.fregs[fd as usize] = mem.read_f64(addr);
                        fp_ready[fd as usize] = issue + self.load_latency(addr);
                    }
                    VliwOp::Store {
                        rs,
                        base,
                        disp,
                        alias,
                        tag,
                    } => {
                        let addr = (state.regs[base as usize].wrapping_add(disp)) as u64;
                        stats.mem_ops += 1;
                        if let Err(v) = self.mem_hook(alias, addr, false, tag, &mut stats) {
                            outcome = Some(RegionOutcome::AliasException(v));
                            break 'bundles;
                        }
                        undo_log.push((addr, mem.read(addr)));
                        mem.write(addr, state.regs[rs as usize] as u64);
                        let _ = self.load_latency(addr); // write-allocate
                    }
                    VliwOp::FStore {
                        fs,
                        base,
                        disp,
                        alias,
                        tag,
                    } => {
                        let addr = (state.regs[base as usize].wrapping_add(disp)) as u64;
                        stats.mem_ops += 1;
                        if let Err(v) = self.mem_hook(alias, addr, false, tag, &mut stats) {
                            outcome = Some(RegionOutcome::AliasException(v));
                            break 'bundles;
                        }
                        undo_log.push((addr, mem.read(addr)));
                        mem.write_f64(addr, state.fregs[fs as usize]);
                        let _ = self.load_latency(addr); // write-allocate
                    }
                    VliwOp::AlatClear { entry } => self.hw.alat_clear(entry),
                    VliwOp::Rotate { amount } => self.hw.rotate(amount),
                    VliwOp::Amov { src, dst } => self.hw.amov(src, dst),
                    VliwOp::Exit { exit_id, cond } => {
                        if exit_id as usize >= program.exits.len() {
                            return Err(SimError::BadExitId { exit_id });
                        }
                        let take = match cond {
                            None => true,
                            Some(CondExit { op, ra, rb }) => {
                                op.eval(state.regs[ra as usize], state.regs[rb as usize])
                            }
                        };
                        if take {
                            outcome = Some(RegionOutcome::Exited { exit_id });
                            break 'bundles;
                        }
                    }
                }
            }
        }

        stats.cycles = clock.max(stats.cycles);
        match outcome {
            Some(RegionOutcome::Exited { exit_id }) => {
                // Commit: keep state and memory.
                Ok((RegionOutcome::Exited { exit_id }, stats))
            }
            Some(RegionOutcome::AliasException(v)) => {
                // Rollback: restore registers and memory, pay the penalty.
                *state = checkpoint;
                for (addr, old) in undo_log.into_iter().rev() {
                    mem.write(addr, old);
                }
                self.hw.reset();
                stats.cycles += self.config.rollback_cycles;
                Ok((RegionOutcome::AliasException(v), stats))
            }
            None => Err(SimError::MissingExit),
        }
    }

    fn mem_hook(
        &mut self,
        alias: AliasAnnot,
        addr: u64,
        is_load: bool,
        tag: u32,
        stats: &mut RegionStats,
    ) -> Result<(), AliasViolation> {
        if !matches!(alias, AliasAnnot::None) {
            stats.alias_checks += 1;
        }
        let examined = self
            .hw
            .mem_access(alias, MemRange::word(addr), is_load, tag)?;
        stats.entries_scanned += u64::from(examined);
        Ok(())
    }
}

/// Integer source registers of an op (for the scoreboard).
fn int_sources(op: &VliwOp) -> impl Iterator<Item = u8> {
    let mut v: [Option<u8>; 2] = [None, None];
    match *op {
        VliwOp::Alu { ra, rb, .. } => v = [Some(ra), Some(rb)],
        VliwOp::AluImm { ra, .. } | VliwOp::Copy { ra, .. } | VliwOp::ItoF { ra, .. } => {
            v[0] = Some(ra)
        }
        VliwOp::Load { base, .. } | VliwOp::FLoad { base, .. } => v[0] = Some(base),
        VliwOp::Store { rs, base, .. } => v = [Some(rs), Some(base)],
        VliwOp::FStore { base, .. } => v[0] = Some(base),
        VliwOp::Exit {
            cond: Some(CondExit { ra, rb, .. }),
            ..
        } => v = [Some(ra), Some(rb)],
        _ => {}
    }
    v.into_iter().flatten()
}

/// FP source registers of an op.
fn fp_sources(op: &VliwOp) -> impl Iterator<Item = u8> {
    let mut v: [Option<u8>; 2] = [None, None];
    match *op {
        VliwOp::Fpu { fa, fb, .. } => v = [Some(fa), Some(fb)],
        VliwOp::FCopy { fa, .. } | VliwOp::FtoI { fa, .. } => v[0] = Some(fa),
        VliwOp::FStore { fs, .. } => v[0] = Some(fs),
        _ => {}
    }
    v.into_iter().flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias_hw::{NoAliasHw, SmarqQueueHw};
    use crate::isa::{Bundle, ExitTarget};
    use smarq_guest::AluOp;

    fn exit_program(bundles: Vec<Bundle>) -> VliwProgram {
        let mut bundles = bundles;
        bundles.push(Bundle {
            ops: vec![VliwOp::Exit {
                exit_id: 0,
                cond: None,
            }],
        });
        VliwProgram {
            bundles,
            exits: vec![ExitTarget {
                guest_block: Some(0),
            }],
        }
    }

    #[test]
    fn arithmetic_and_commit() {
        let p = exit_program(vec![
            Bundle {
                ops: vec![
                    VliwOp::IConst { rd: 1, value: 6 },
                    VliwOp::IConst { rd: 2, value: 7 },
                ],
            },
            Bundle {
                ops: vec![VliwOp::Alu {
                    op: AluOp::Mul,
                    rd: 3,
                    ra: 1,
                    rb: 2,
                }],
            },
        ]);
        let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        let (out, stats) = sim.run_region(&p, &mut st, &mut mem).unwrap();
        assert_eq!(out, RegionOutcome::Exited { exit_id: 0 });
        assert_eq!(st.regs[3], 42);
        assert!(stats.cycles >= 3);
        assert_eq!(stats.bundles, 3);
    }

    #[test]
    fn scoreboard_stalls_on_load_use() {
        // ld r1=[r2]; add r3 = r1+r1 must wait out the load latency.
        let p = exit_program(vec![
            Bundle {
                ops: vec![VliwOp::Load {
                    rd: 1,
                    base: 2,
                    disp: 0,
                    alias: AliasAnnot::None,
                    tag: 0,
                }],
            },
            Bundle {
                ops: vec![VliwOp::Alu {
                    op: AluOp::Add,
                    rd: 3,
                    ra: 1,
                    rb: 1,
                }],
            },
        ]);
        let cfg = MachineConfig::default();
        let mut sim = Simulator::new(cfg, NoAliasHw);
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        mem.write(0, 21);
        let (_, stats) = sim.run_region(&p, &mut st, &mut mem).unwrap();
        assert_eq!(st.regs[3], 42);
        // checkpoint(1) + load issues at 1 + dependent add waits until
        // 1 + lat_load, then exit: strictly more than 4 cycles.
        assert!(
            stats.cycles >= u64::from(cfg.lat_load) + 2,
            "cycles = {}",
            stats.cycles
        );
    }

    #[test]
    fn conditional_exit_taken_and_not_taken() {
        let mk = |r1: i64| {
            let p = VliwProgram {
                bundles: vec![
                    Bundle {
                        ops: vec![VliwOp::IConst { rd: 1, value: r1 }],
                    },
                    Bundle {
                        ops: vec![VliwOp::Exit {
                            exit_id: 1,
                            cond: Some(CondExit {
                                op: smarq_guest::CmpOp::Ne,
                                ra: 1,
                                rb: 0,
                            }),
                        }],
                    },
                    Bundle {
                        ops: vec![VliwOp::Exit {
                            exit_id: 0,
                            cond: None,
                        }],
                    },
                ],
                exits: vec![
                    ExitTarget {
                        guest_block: Some(10),
                    },
                    ExitTarget {
                        guest_block: Some(20),
                    },
                ],
            };
            let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
            let mut st = VliwState::new();
            let mut mem = Memory::new();
            sim.run_region(&p, &mut st, &mut mem).unwrap().0
        };
        assert_eq!(mk(5), RegionOutcome::Exited { exit_id: 1 });
        assert_eq!(mk(0), RegionOutcome::Exited { exit_id: 0 });
    }

    #[test]
    fn alias_exception_rolls_back_state_and_memory() {
        // A hoisted load (P) then an aliasing store (C): exception; the
        // store before it must be undone and registers restored.
        let p = exit_program(vec![
            Bundle {
                ops: vec![VliwOp::IConst {
                    rd: 1,
                    value: 0x100,
                }],
            },
            Bundle {
                ops: vec![VliwOp::Load {
                    rd: 2,
                    base: 1,
                    disp: 0,
                    alias: AliasAnnot::Smarq {
                        p: true,
                        c: false,
                        offset: 0,
                    },
                    tag: 1,
                }],
            },
            Bundle {
                // An unrelated store that will need undoing.
                ops: vec![VliwOp::Store {
                    rs: 1,
                    base: 1,
                    disp: 64,
                    alias: AliasAnnot::None,
                    tag: 2,
                }],
            },
            Bundle {
                // Aliasing store: checks offset 0 and faults.
                ops: vec![VliwOp::Store {
                    rs: 1,
                    base: 1,
                    disp: 0,
                    alias: AliasAnnot::Smarq {
                        p: false,
                        c: true,
                        offset: 0,
                    },
                    tag: 3,
                }],
            },
        ]);
        let cfg = MachineConfig::default();
        let mut sim = Simulator::new(cfg, SmarqQueueHw::new(cfg.num_alias_regs));
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        mem.write(0x100, 7);
        let mem_before = mem.clone();
        let (out, stats) = sim.run_region(&p, &mut st, &mut mem).unwrap();
        match out {
            RegionOutcome::AliasException(v) => {
                assert_eq!(v.checker_tag, 3);
                assert_eq!(v.producer_tag, 1);
            }
            other => panic!("expected exception, got {other:?}"),
        }
        assert_eq!(st.regs[1], 0, "registers rolled back");
        assert_eq!(st.regs[2], 0);
        assert_eq!(mem, mem_before, "memory rolled back");
        assert!(stats.cycles >= cfg.rollback_cycles);
    }

    #[test]
    fn missing_exit_is_a_translator_bug() {
        let p = VliwProgram {
            bundles: vec![Bundle {
                ops: vec![VliwOp::IConst { rd: 1, value: 1 }],
            }],
            exits: vec![],
        };
        let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        assert_eq!(
            sim.run_region(&p, &mut st, &mut mem).unwrap_err(),
            SimError::MissingExit
        );
    }

    #[test]
    fn bad_exit_id_reported() {
        let p = VliwProgram {
            bundles: vec![Bundle {
                ops: vec![VliwOp::Exit {
                    exit_id: 3,
                    cond: None,
                }],
            }],
            exits: vec![],
        };
        let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        assert_eq!(
            sim.run_region(&p, &mut st, &mut mem).unwrap_err(),
            SimError::BadExitId { exit_id: 3 }
        );
    }

    #[test]
    fn guest_state_roundtrip() {
        let mut st = VliwState::new();
        let mut regs = [0i64; 32];
        let mut fregs = [0f64; 32];
        regs[5] = 99;
        fregs[7] = 2.5;
        st.load_guest(&regs, &fregs);
        assert_eq!(st.regs[5], 99);
        let mut r2 = [0i64; 32];
        let mut f2 = [0f64; 32];
        st.store_guest(&mut r2, &mut f2);
        assert_eq!(r2, regs);
        assert_eq!(f2, fregs);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::alias_hw::NoAliasHw;
    use crate::isa::{Bundle, ExitTarget};

    #[test]
    fn trace_reports_every_bundle_with_monotone_cycles() {
        let p = VliwProgram {
            bundles: vec![
                Bundle {
                    ops: vec![VliwOp::IConst { rd: 1, value: 2 }],
                },
                Bundle {
                    ops: vec![VliwOp::Alu {
                        op: smarq_guest::AluOp::Mul,
                        rd: 2,
                        ra: 1,
                        rb: 1,
                    }],
                },
                Bundle {
                    ops: vec![VliwOp::Exit {
                        exit_id: 0,
                        cond: None,
                    }],
                },
            ],
            exits: vec![ExitTarget {
                guest_block: Some(0),
            }],
        };
        let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        let mut events = Vec::new();
        sim.run_region_traced(&p, &mut st, &mut mem, |e| events.push(e))
            .unwrap();
        assert_eq!(events.len(), 3);
        assert!(events
            .windows(2)
            .all(|w| w[0].issue_cycle < w[1].issue_cycle));
        assert_eq!(events[0].ops, 1);
        assert_eq!(events[0].bundle, 0);
    }

    #[test]
    fn trace_stops_at_taken_exit() {
        let p = VliwProgram {
            bundles: vec![
                Bundle {
                    ops: vec![VliwOp::Exit {
                        exit_id: 0,
                        cond: None,
                    }],
                },
                Bundle {
                    ops: vec![VliwOp::IConst { rd: 1, value: 1 }],
                },
            ],
            exits: vec![ExitTarget { guest_block: None }],
        };
        let mut sim = Simulator::new(MachineConfig::default(), NoAliasHw);
        let mut st = VliwState::new();
        let mut mem = Memory::new();
        let mut n = 0;
        sim.run_region_traced(&p, &mut st, &mut mem, |_| n += 1)
            .unwrap();
        assert_eq!(n, 1, "bundles after the taken exit never issue");
    }
}
