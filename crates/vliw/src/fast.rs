//! Fast-functional execution state: the compact register file the
//! functional tier runs on, plus the inlined single-word SMARQ alias
//! queue it uses in place of the generic hardware models.
//!
//! The cycle-level [`Simulator`](crate::Simulator) owns the timing model
//! (scoreboard, issue, latencies); the functional tier reproduces only
//! the *architectural* semantics — register/memory effects and alias
//! exceptions — bit-exactly, so the cycle simulator can stay behind as a
//! sampled timing/differential oracle. This module provides the pieces
//! the tier shares with the rest of the machine substrate:
//!
//! * [`FastState`]: both register files plus the recycled store-undo log
//!   and masked register checkpoint that make alias-exception rollback
//!   exact without per-entry allocation;
//! * [`FastAliasQueue`]: the SMARQ ordered queue flattened onto a single
//!   `u64` occupancy word (hardware configurations have ≤ 64 alias
//!   registers), replicating [`smarq::queue::AliasQueue`]'s first-hit
//!   scan order, load-set filtering, rotation and AMOV semantics.
//!
//! The lowering from [`VliwProgram`](crate::VliwProgram) to the
//! functional op stream, and the executor driving this state, live in
//! `smarq_opt::fastcomp` (the optimizer owns region shape); marshalling
//! in and out of guest registers and [`VliwState`] lives here so the
//! runtime can tier-down a sampled execution onto the cycle simulator.

use crate::isa::MemRange;
use crate::sim::{RegionWriteMask, VliwState};
use smarq_guest::Memory;

/// Architectural state of the fast-functional tier: the 64+64 register
/// files (guest state resident in the low 32 of each, like
/// [`VliwState`]) plus the rollback machinery an atomic region needs —
/// a masked register checkpoint and a store-undo log, both recycled
/// across region entries so steady-state execution never allocates.
#[derive(Clone, Debug)]
pub struct FastState {
    /// Integer register file.
    pub regs: [i64; 64],
    /// Floating-point register file.
    pub fregs: [f64; 64],
    /// Store-undo log `(addr, old_word)`, replayed in reverse on
    /// rollback.
    undo: Vec<(u64, u64)>,
    /// Masked integer-register checkpoint (write-set registers only).
    ckpt_ints: Vec<(u8, i64)>,
    /// Masked FP-register checkpoint.
    ckpt_fps: Vec<(u8, f64)>,
}

impl Default for FastState {
    fn default() -> Self {
        FastState {
            regs: [0; 64],
            fregs: [0.0; 64],
            undo: Vec::new(),
            ckpt_ints: Vec::new(),
            ckpt_fps: Vec::new(),
        }
    }
}

impl FastState {
    /// Creates a zeroed state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads guest registers (32+32) into the low half of the files.
    pub fn load_guest(&mut self, regs: &[i64; 32], fregs: &[f64; 32]) {
        self.regs[..32].copy_from_slice(regs);
        self.fregs[..32].copy_from_slice(fregs);
    }

    /// Stores the low half of the files back to guest registers.
    pub fn store_guest(&self, regs: &mut [i64; 32], fregs: &mut [f64; 32]) {
        regs.copy_from_slice(&self.regs[..32]);
        fregs.copy_from_slice(&self.fregs[..32]);
    }

    /// Copies both full register files into a [`VliwState`] — the
    /// marshal-out used when a sampled execution tiers down onto the
    /// cycle simulator from the fast tier's resident state.
    pub fn copy_to_vliw(&self, vstate: &mut VliwState) {
        vstate.regs = self.regs;
        vstate.fregs = self.fregs;
    }

    /// Copies both full register files in from a [`VliwState`].
    pub fn copy_from_vliw(&mut self, vstate: &VliwState) {
        self.regs = vstate.regs;
        self.fregs = vstate.fregs;
    }

    /// Atomic-region entry for a region that can fault: snapshots the
    /// registers in `mask` (the region's write-set) and clears the
    /// store-undo log. Regions that cannot raise an alias exception
    /// skip this entirely — that is the fast tier's main win.
    pub fn begin_region(&mut self, mask: RegionWriteMask) {
        self.undo.clear();
        self.ckpt_ints.clear();
        self.ckpt_fps.clear();
        let mut m = mask.ints;
        while m != 0 {
            let r = m.trailing_zeros() as usize;
            self.ckpt_ints.push((r as u8, self.regs[r]));
            m &= m - 1;
        }
        let mut m = mask.fps;
        while m != 0 {
            let r = m.trailing_zeros() as usize;
            self.ckpt_fps.push((r as u8, self.fregs[r]));
            m &= m - 1;
        }
    }

    /// Logs the pre-store memory word for rollback.
    #[inline]
    pub fn log_store(&mut self, addr: u64, old: u64) {
        self.undo.push((addr, old));
    }

    /// Alias-exception rollback: restores the checkpointed registers and
    /// replays the store-undo log in reverse. Only meaningful after
    /// [`FastState::begin_region`] on the same entry.
    pub fn rollback(&mut self, mem: &mut Memory) {
        for &(r, v) in &self.ckpt_ints {
            self.regs[r as usize] = v;
        }
        for &(r, v) in &self.ckpt_fps {
            self.fregs[r as usize] = v;
        }
        for i in (0..self.undo.len()).rev() {
            let (addr, old) = self.undo[i];
            mem.write(addr, old);
        }
        self.undo.clear();
    }
}

/// Bitmask for physical slots `[a, b)` of a single-word queue.
#[inline]
fn span_mask(a: u32, b: u32) -> u64 {
    debug_assert!(a <= b && b <= 64);
    if b - a >= 64 {
        u64::MAX
    } else {
        ((1u64 << (b - a)) - 1) << a
    }
}

/// The SMARQ ordered alias register queue flattened onto one `u64`
/// occupancy word — the inlined form the fast-functional tier uses for
/// hardware-sized files (≤ 64 registers; larger files fall back to the
/// generic [`AnyAliasHw`](crate::AnyAliasHw)).
///
/// Bit-exact with [`SmarqQueueHw`](crate::SmarqQueueHw) /
/// [`smarq::queue::AliasQueue`]: checks scan offsets `from..n` in
/// ascending order and report the *first* conflicting producer, loads
/// skip load-set entries, rotation clears the registers that rotate
/// out, and AMOV moves (or clears, for `src == dst`) a single entry.
/// The unit tests drive both implementations through random operation
/// sequences and assert identical observable behavior.
#[derive(Clone, Debug)]
pub struct FastAliasQueue {
    /// Recorded access range per physical slot (valid where `occ` set).
    ranges: Box<[MemRange]>,
    /// Producer tag per physical slot (valid where `occ` set).
    tags: Box<[u32]>,
    /// Occupancy bitmask over physical slots.
    occ: u64,
    /// Set-by-load bitmask (meaningful only where `occ` is set).
    by_load: u64,
    /// Physical slot currently at offset 0.
    base: u32,
    /// Register count.
    n: u32,
}

impl FastAliasQueue {
    /// Creates a queue with `num_regs` registers, all free.
    ///
    /// # Panics
    /// Panics unless `1 <= num_regs <= 64` — the single-word fast form
    /// only covers hardware-sized files.
    pub fn new(num_regs: u32) -> Self {
        assert!(
            (1..=64).contains(&num_regs),
            "fast alias queue covers 1..=64 registers, got {num_regs}"
        );
        FastAliasQueue {
            ranges: vec![MemRange { lo: 0, hi: 0 }; num_regs as usize].into_boxed_slice(),
            tags: vec![0; num_regs as usize].into_boxed_slice(),
            occ: 0,
            by_load: 0,
            base: 0,
            n: num_regs,
        }
    }

    /// Register count.
    pub fn num_regs(&self) -> u32 {
        self.n
    }

    /// Clears every register and resets the base (atomic region entry).
    #[inline]
    pub fn reset(&mut self) {
        self.occ = 0;
        self.by_load = 0;
        self.base = 0;
    }

    #[inline]
    fn phys(&self, offset: u32) -> u32 {
        debug_assert!(offset < self.n, "offset {offset} out of {} regs", self.n);
        let p = self.base + offset;
        if p >= self.n {
            p - self.n
        } else {
            p
        }
    }

    /// The physical runs covering offsets `from..n` in increasing-offset
    /// order (the circular window splits into at most two linear runs).
    #[inline]
    fn window(&self, from: u32) -> [(u32, u32); 2] {
        let start = self.phys(from);
        let len = self.n - from;
        if start + len <= self.n {
            [(start, start + len), (0, 0)]
        } else {
            [(start, self.n), (0, start + len - self.n)]
        }
    }

    /// **set** (`P` bit): records `range`/`tag` at `offset`.
    #[inline]
    pub fn set(&mut self, offset: u32, range: MemRange, tag: u32, is_load: bool) {
        let idx = self.phys(offset);
        self.ranges[idx as usize] = range;
        self.tags[idx as usize] = tag;
        self.occ |= 1u64 << idx;
        if is_load {
            self.by_load |= 1u64 << idx;
        } else {
            self.by_load &= !(1u64 << idx);
        }
    }

    /// **check** (`C` bit): scans valid entries at offsets `>= offset`
    /// in ascending order (loads skip load-set entries) and returns the
    /// producer tag of the *first* one overlapping `range`, if any.
    #[inline]
    pub fn check_first(&self, offset: u32, is_load: bool, range: MemRange) -> Option<u32> {
        let candidates = if is_load {
            self.occ & !self.by_load
        } else {
            self.occ
        };
        for (a, b) in self.window(offset) {
            let mut m = candidates & span_mask(a, b);
            while m != 0 {
                let idx = m.trailing_zeros() as usize;
                if self.ranges[idx].overlaps(range) {
                    return Some(self.tags[idx]);
                }
                m &= m - 1;
            }
        }
        None
    }

    /// Number of valid entries a check starting at `offset` examines
    /// (the energy proxy; a popcount over the occupancy window).
    #[inline]
    pub fn valid_from(&self, offset: u32) -> u32 {
        let [r1, r2] = self.window(offset);
        (self.occ & (span_mask(r1.0, r1.1) | span_mask(r2.0, r2.1))).count_ones()
    }

    /// **rotate k**: advances the base by `amount`, clearing the
    /// registers that rotate out.
    #[inline]
    pub fn rotate(&mut self, amount: u32) {
        debug_assert!(amount <= self.n, "rotation within file size");
        // Offsets 0..amount occupy the physical window starting at base.
        let start = self.base;
        let released = if start + amount <= self.n {
            span_mask(start, start + amount)
        } else {
            span_mask(start, self.n) | span_mask(0, start + amount - self.n)
        };
        self.occ &= !released;
        self.base += amount;
        if self.base >= self.n {
            self.base -= self.n;
        }
    }

    /// **AMOV src, dst**: moves the entry at `src` to `dst`, clearing
    /// `src`; `src == dst` just clears. Moving an empty register clears
    /// `dst` (exactly as the reference queue does).
    #[inline]
    pub fn amov(&mut self, src: u32, dst: u32) {
        let sidx = self.phys(src);
        let present = self.occ & (1u64 << sidx) != 0;
        let was_load = self.by_load & (1u64 << sidx) != 0;
        self.occ &= !(1u64 << sidx);
        if src != dst {
            let didx = self.phys(dst);
            if present {
                self.ranges[didx as usize] = self.ranges[sidx as usize];
                self.tags[didx as usize] = self.tags[sidx as usize];
                self.occ |= 1u64 << didx;
            } else {
                self.occ &= !(1u64 << didx);
            }
            if present && was_load {
                self.by_load |= 1u64 << didx;
            } else {
                self.by_load &= !(1u64 << didx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias_hw::{AliasHardware, SmarqQueueHw};
    use crate::isa::AliasAnnot;
    use smarq::prng::Prng;

    #[test]
    fn state_marshal_roundtrips() {
        let mut fs = FastState::new();
        let mut regs = [0i64; 32];
        let mut fregs = [0f64; 32];
        regs[5] = 99;
        fregs[7] = 2.5;
        fs.load_guest(&regs, &fregs);
        assert_eq!(fs.regs[5], 99);
        let mut r2 = [0i64; 32];
        let mut f2 = [0f64; 32];
        fs.store_guest(&mut r2, &mut f2);
        assert_eq!(r2, regs);
        assert_eq!(f2, fregs);

        fs.regs[40] = -7;
        fs.fregs[63] = 0.5;
        let mut vs = VliwState::new();
        fs.copy_to_vliw(&mut vs);
        assert_eq!(vs.regs, fs.regs);
        assert_eq!(vs.fregs, fs.fregs);
        let mut back = FastState::new();
        back.copy_from_vliw(&vs);
        assert_eq!(back.regs, fs.regs);
        assert_eq!(back.fregs, fs.fregs);
    }

    #[test]
    fn masked_checkpoint_rollback_is_exact() {
        let mut fs = FastState::new();
        fs.regs[1] = 10;
        fs.regs[40] = -77; // outside the mask: must survive untouched
        fs.fregs[2] = 1.5;
        let mut mem = Memory::new();
        mem.write(0x100, 7);
        let snapshot_regs = fs.regs;
        let snapshot_fregs = fs.fregs;
        let mem_before = mem.clone();

        let mask = RegionWriteMask {
            ints: (1 << 1) | (1 << 2),
            fps: 1 << 2,
        };
        // Two entries through the same recycled buffers.
        for _ in 0..2 {
            fs.begin_region(mask);
            fs.regs[1] = 999;
            fs.regs[2] = 888;
            fs.fregs[2] = 9.25;
            fs.log_store(0x100, mem.read(0x100));
            mem.write(0x100, 42);
            fs.log_store(0x200, mem.read(0x200));
            mem.write(0x200, 43);
            fs.rollback(&mut mem);
            assert_eq!(fs.regs, snapshot_regs);
            assert_eq!(fs.fregs, snapshot_fregs);
            assert_eq!(mem, mem_before, "undo log replayed in reverse");
        }
    }

    /// Drives the fast single-word queue and the reference SMARQ
    /// hardware through random operation sequences: every check must
    /// agree on hit/miss, producer tag and examined-entry count.
    #[test]
    fn fast_queue_matches_reference_hardware() {
        for &regs in &[1u32, 2, 5, 63, 64] {
            let mut rng = Prng::new(u64::from(regs) * 977 + 5);
            let mut fast = FastAliasQueue::new(regs);
            let mut reference = SmarqQueueHw::new(regs);
            let mut tag = 0u32;
            for step in 0..600 {
                match rng.bounded(8) {
                    0..=4 => {
                        // A memory access with random P/C bits.
                        let p = rng.chance(1, 2);
                        let c = rng.chance(1, 2);
                        if !p && !c {
                            continue;
                        }
                        let offset = rng.range_u32(0, regs);
                        let is_load = rng.chance(1, 2);
                        let addr = u64::from(rng.range_u32(0, 6)) * 8 + 0x100;
                        let range = MemRange::word(addr);
                        tag += 1;
                        let annot = AliasAnnot::Smarq { p, c, offset };
                        let expect = reference.mem_access(annot, range, is_load, tag);
                        let mut examined = 0;
                        let got = if c {
                            examined = fast.valid_from(offset);
                            fast.check_first(offset, is_load, range)
                        } else {
                            None
                        };
                        match expect {
                            Ok(n) => {
                                assert_eq!(got, None, "regs={regs} step={step}");
                                assert_eq!(examined, n, "regs={regs} step={step}");
                                if p {
                                    fast.set(offset, range, tag, is_load);
                                }
                            }
                            Err(v) => {
                                assert_eq!(
                                    got,
                                    Some(v.producer_tag),
                                    "regs={regs} step={step}: first-hit producer"
                                );
                            }
                        }
                    }
                    5 => {
                        let amount = rng.range_u32(0, regs.min(4) + 1);
                        reference.rotate(amount);
                        fast.rotate(amount);
                    }
                    6 => {
                        let src = rng.range_u32(0, regs);
                        let dst = rng.range_u32(0, regs);
                        reference.amov(src, dst);
                        fast.amov(src, dst);
                    }
                    _ => {
                        if rng.chance(1, 8) {
                            reference.reset();
                            fast.reset();
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rotation_wraps_and_releases_like_the_paper() {
        // Mirror the AliasQueue rotation test: set 0 and 1, rotate 1 —
        // old offset 1 is now offset 0, the released slot is reusable.
        let mut q = FastAliasQueue::new(2);
        q.set(0, MemRange::word(0x100), 10, false);
        q.set(1, MemRange::word(0x200), 11, false);
        q.rotate(1);
        assert_eq!(q.check_first(0, false, MemRange::word(0x200)), Some(11));
        assert_eq!(q.check_first(0, false, MemRange::word(0x100)), None);
        assert_eq!(q.valid_from(0), 1);
        q.set(1, MemRange::word(0x300), 12, false);
        assert_eq!(q.valid_from(0), 2);
    }

    #[test]
    fn full_width_queue_edge_cases() {
        // n = 64 exercises the shift-by-64 edge in the span masks.
        let mut q = FastAliasQueue::new(64);
        for off in 0..64 {
            q.set(off, MemRange::word(0x100), off, false);
        }
        assert_eq!(q.valid_from(0), 64);
        assert_eq!(q.check_first(0, false, MemRange::word(0x100)), Some(0));
        q.rotate(64);
        assert_eq!(q.valid_from(0), 0);
        assert_eq!(q.check_first(0, false, MemRange::word(0x100)), None);
    }

    #[test]
    fn load_checkers_skip_load_set_entries() {
        let mut q = FastAliasQueue::new(4);
        q.set(0, MemRange::word(0x100), 1, true);
        q.set(1, MemRange::word(0x100), 2, false);
        assert_eq!(q.check_first(0, true, MemRange::word(0x100)), Some(2));
        assert_eq!(q.check_first(0, false, MemRange::word(0x100)), Some(1));
    }
}
