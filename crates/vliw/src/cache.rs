//! A set-associative L1 data cache timing model.
//!
//! The paper's machine (Table 2, lost to OCR) certainly had a data cache;
//! our default machine uses a fixed load-use latency instead, which keeps
//! the headline results deterministic and easy to reason about. This
//! optional model adds locality-dependent latency: enable it through
//! [`MachineConfig::dcache`](crate::MachineConfig) to study how cache
//! behavior interacts with speculative load hoisting (see the sensitivity
//! section of EXPERIMENTS.md).
//!
//! Timing-only: data always comes from the memory model; the cache decides
//! latency. True-LRU replacement, write-allocate. State survives region
//! rollbacks (a rollback squashes architectural effects, not cache fills).

/// Cache geometry and latencies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheParams {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two, ≥ 8).
    pub line_bytes: u32,
    /// Load-use latency on a hit.
    pub hit_latency: u32,
    /// Load-use latency on a miss.
    pub miss_latency: u32,
}

impl Default for CacheParams {
    fn default() -> Self {
        // 16 KiB: 64 sets x 4 ways x 64-byte lines.
        CacheParams {
            sets: 64,
            ways: 4,
            line_bytes: 64,
            hit_latency: 4,
            miss_latency: 24,
        }
    }
}

/// The cache state.
#[derive(Clone, Debug)]
pub struct DCache {
    params: CacheParams,
    /// `tags[set][way]` = line tag; `lru[set][way]` = last-touch stamp.
    tags: Vec<Vec<Option<u64>>>,
    lru: Vec<Vec<u64>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl DCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    /// Panics unless `sets` and `line_bytes` are powers of two,
    /// `line_bytes >= 8`, and `ways >= 1`.
    pub fn new(params: CacheParams) -> Self {
        assert!(params.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            params.line_bytes.is_power_of_two() && params.line_bytes >= 8,
            "line size must be a power of two of at least 8 bytes"
        );
        assert!(params.ways >= 1, "at least one way");
        DCache {
            params,
            tags: vec![vec![None; params.ways as usize]; params.sets as usize],
            lru: vec![vec![0; params.ways as usize]; params.sets as usize],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configured geometry.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Accesses `addr`, returning the load-use latency and updating state.
    pub fn access(&mut self, addr: u64) -> u32 {
        self.clock += 1;
        let line = addr / u64::from(self.params.line_bytes);
        let set = (line % u64::from(self.params.sets)) as usize;
        let tag = line / u64::from(self.params.sets);
        let ways = &mut self.tags[set];
        if let Some(w) = ways.iter().position(|&t| t == Some(tag)) {
            self.lru[set][w] = self.clock;
            self.hits += 1;
            return self.params.hit_latency;
        }
        self.misses += 1;
        // Fill the LRU way (empty ways have stamp 0 and win).
        let victim = (0..ways.len())
            .min_by_key(|&w| self.lru[set][w])
            .expect("at least one way");
        ways[victim] = Some(tag);
        self.lru[set][victim] = self.clock;
        self.params.miss_latency
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DCache {
        DCache::new(CacheParams {
            sets: 2,
            ways: 2,
            line_bytes: 64,
            hit_latency: 4,
            miss_latency: 24,
        })
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = small();
        assert_eq!(c.access(0x1000), 24);
        assert_eq!(c.access(0x1008), 4, "same line");
        assert_eq!(c.access(0x1040), 24, "next line");
        assert_eq!(c.stats(), (1, 2));
    }

    #[test]
    fn lru_replacement_within_a_set() {
        let mut c = small();
        // Three distinct tags mapping to set 0 (line numbers 0, 2, 4 mod 2).
        let a = 0x0000; // line 0, set 0
        let b = 0x0080; // line 2, set 0
        let d = 0x0100; // line 4, set 0
        c.access(a); // miss, fill
        c.access(b); // miss, fill (set full)
        c.access(a); // hit (refreshes a)
        c.access(d); // miss, evicts b (LRU)
        assert_eq!(c.access(a), 4, "a survived");
        assert_eq!(c.access(b), 24, "b was evicted");
    }

    #[test]
    fn sets_isolate_lines() {
        let mut c = small();
        c.access(0x0000); // set 0
        assert_eq!(c.access(0x0040), 24, "set 1 cold");
        assert_eq!(c.access(0x0000), 4);
        assert_eq!(c.access(0x0040), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_validated() {
        DCache::new(CacheParams {
            sets: 3,
            ..CacheParams::default()
        });
    }

    #[test]
    fn default_geometry_is_16k() {
        let p = CacheParams::default();
        assert_eq!(p.sets * p.ways * p.line_bytes, 16 * 1024);
    }
}
