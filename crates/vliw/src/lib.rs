//! # smarq-vliw — in-order VLIW machine substrate
//!
//! The SMARQ paper evaluates on "an internal VLIW CPU modeled by a
//! cycle-accurate simulator" with atomic-region support and 64 alias
//! registers (paper §6, Table 2). This crate provides that substrate:
//!
//! * the target [`VliwOp`]/[`Bundle`]/[`VliwProgram`] instruction set the
//!   dynamic optimizer emits, including alias annotations, `ROTATE`,
//!   `AMOV`, and region side exits;
//! * a [`MachineConfig`] describing issue width, functional-unit mix and
//!   latencies (our substitute for the paper's lost Table 2 — see
//!   EXPERIMENTS.md);
//! * the four alias-detection hardware models of the paper's comparison
//!   (Table 1): the SMARQ ordered queue ([`SmarqQueueHw`]), a
//!   Transmeta-Efficeon-style bit-mask file ([`EfficeonHw`]), an
//!   Itanium-ALAT-style table with false positives ([`AlatHw`]), and
//!   [`NoAliasHw`];
//! * a cycle-level in-order [`Simulator`] with atomic-region semantics:
//!   register checkpoint at entry, memory undo log, rollback on alias
//!   exception.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alias_hw;
mod cache;
mod disasm;
mod fast;
mod isa;
mod machine;
mod parse;
mod sim;

pub use alias_hw::{
    AlatHw, AliasHardware, AliasViolation, AnyAliasHw, EfficeonHw, HwKind, NoAliasHw, SmarqQueueHw,
};
pub use cache::{CacheParams, DCache};
pub use fast::{FastAliasQueue, FastState};
pub use isa::{AliasAnnot, Bundle, CondExit, ExitTarget, MemRange, SlotClass, VliwOp, VliwProgram};
pub use machine::MachineConfig;
pub use parse::parse_vliw;
pub use sim::{
    RegionOutcome, RegionStats, RegionWriteMask, SimError, Simulator, TraceEvent, VliwState,
};
