//! The four alias-detection hardware models compared by the paper
//! (Table 1 and §2): the SMARQ ordered register queue, a
//! Transmeta-Efficeon-style bit-mask file, an Itanium-ALAT-style table, and
//! no hardware at all.

use crate::isa::{AliasAnnot, MemRange};
use smarq::queue::AliasQueue;
use std::fmt;

/// A detected (or spuriously detected) alias: the running memory operation
/// `checker_tag` conflicted with the range set by `producer_tag`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AliasViolation {
    /// Tag of the memory operation that triggered the exception.
    pub checker_tag: u32,
    /// Tag of the memory operation whose recorded range overlapped.
    pub producer_tag: u32,
}

impl fmt::Display for AliasViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alias exception: op {} conflicts with op {}",
            self.checker_tag, self.producer_tag
        )
    }
}

/// Which hardware scheme a simulator/optimizer targets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HwKind {
    /// SMARQ ordered alias register queue.
    Smarq,
    /// Efficeon-style bit-mask alias registers (≤ 15).
    Efficeon,
    /// Itanium-ALAT-style (false positives; no store-store detection).
    Alat,
    /// No alias-detection hardware.
    None,
}

/// Common interface of the alias-detection hardware models.
///
/// The simulator calls [`AliasHardware::mem_access`] for every executed
/// load/store, passing the instruction's annotation and the concrete
/// access range, and [`AliasHardware::rotate`]/[`AliasHardware::amov`] for
/// the SMARQ queue-management instructions. `reset` is invoked at atomic
/// region boundaries (entry, commit and rollback all invalidate the
/// detection state).
pub trait AliasHardware {
    /// Processes one memory access, returning the number of alias entries
    /// the hardware had to examine (an energy proxy — paper §2.4 points
    /// out that unnecessary detections cost energy).
    ///
    /// # Errors
    /// [`AliasViolation`] when the hardware detects (possibly spuriously —
    /// that is the point of modeling ALAT) an alias that requires a region
    /// rollback.
    fn mem_access(
        &mut self,
        annot: AliasAnnot,
        range: MemRange,
        is_load: bool,
        tag: u32,
    ) -> Result<u32, AliasViolation>;

    /// Rotates the register queue (SMARQ only; others ignore it).
    fn rotate(&mut self, amount: u32);

    /// Moves/clears an alias register (SMARQ only; others ignore it).
    fn amov(&mut self, src: u32, dst: u32);

    /// Invalidates one ALAT entry (ALAT only; others ignore it).
    fn alat_clear(&mut self, _entry: u32) {}

    /// Invalidates all detection state (atomic region boundary).
    fn reset(&mut self);
}

/// The SMARQ ordered alias register queue with P/C bits, rotation and AMOV
/// (paper §3), backed by the functional model in [`smarq::queue`].
#[derive(Clone, Debug)]
pub struct SmarqQueueHw {
    queue: AliasQueue<(MemRange, u32)>,
    num_regs: u32,
}

impl SmarqQueueHw {
    /// Creates a queue with `num_regs` hardware registers.
    pub fn new(num_regs: u32) -> Self {
        SmarqQueueHw {
            queue: AliasQueue::new(num_regs),
            num_regs,
        }
    }

    /// Hardware register count.
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }
}

impl AliasHardware for SmarqQueueHw {
    fn mem_access(
        &mut self,
        annot: AliasAnnot,
        range: MemRange,
        is_load: bool,
        tag: u32,
    ) -> Result<u32, AliasViolation> {
        let AliasAnnot::Smarq { p, c, offset } = annot else {
            debug_assert!(
                matches!(annot, AliasAnnot::None),
                "SMARQ hardware received a foreign annotation: {annot:?}"
            );
            return Ok(0);
        };
        let mut examined = 0;
        if c {
            examined = self
                .queue
                .valid_from(offset)
                .expect("translator emitted an in-range offset");
            // Allocation-free first-hit scan: an alias exception fires on
            // the first conflicting entry, so later hits are irrelevant.
            let hit = self
                .queue
                .check_first(offset, is_load, |&(r, _)| r.overlaps(range))
                .expect("translator emitted an in-range offset");
            if let Some(h) = hit {
                let producer = self
                    .queue
                    .get(h)
                    .expect("hit in range")
                    .expect("hit valid")
                    .payload
                    .1;
                return Err(AliasViolation {
                    checker_tag: tag,
                    producer_tag: producer,
                });
            }
        }
        if p {
            self.queue
                .set(offset, (range, tag), is_load)
                .expect("translator emitted an in-range offset");
        }
        Ok(examined)
    }

    fn rotate(&mut self, amount: u32) {
        self.queue
            .rotate(amount)
            .expect("rotation within file size");
    }

    fn amov(&mut self, src: u32, dst: u32) {
        self.queue.amov(src, dst).expect("AMOV offsets in range");
    }

    fn reset(&mut self) {
        self.queue.reset();
    }
}

/// Efficeon-style alias registers: instructions name the register to set
/// and carry an explicit bit-mask of registers to check (paper §2.2). The
/// encoding limits the file to at most 15 registers — the scalability
/// problem SMARQ removes.
#[derive(Clone, Debug)]
pub struct EfficeonHw {
    regs: Vec<Option<(MemRange, u32)>>,
}

impl EfficeonHw {
    /// Maximum register count the bit-mask encoding supports.
    pub const MAX_REGS: u32 = 15;

    /// Creates a file with `num_regs` registers.
    ///
    /// # Panics
    /// Panics if `num_regs` exceeds [`EfficeonHw::MAX_REGS`] — the
    /// encoding has no room for more, which is the paper's point.
    pub fn new(num_regs: u32) -> Self {
        assert!(
            num_regs <= Self::MAX_REGS,
            "Efficeon bit-mask encoding supports at most 15 alias registers"
        );
        EfficeonHw {
            regs: vec![None; num_regs as usize],
        }
    }
}

impl AliasHardware for EfficeonHw {
    fn mem_access(
        &mut self,
        annot: AliasAnnot,
        range: MemRange,
        _is_load: bool,
        tag: u32,
    ) -> Result<u32, AliasViolation> {
        let AliasAnnot::Efficeon { set, check_mask } = annot else {
            debug_assert!(matches!(annot, AliasAnnot::None));
            return Ok(0);
        };
        let mut examined = 0;
        for (i, slot) in self.regs.iter().enumerate() {
            if check_mask & (1 << i) != 0 {
                if let Some((r, producer)) = slot {
                    examined += 1;
                    if r.overlaps(range) {
                        return Err(AliasViolation {
                            checker_tag: tag,
                            producer_tag: *producer,
                        });
                    }
                }
            }
        }
        if let Some(idx) = set {
            self.regs[idx as usize] = Some((range, tag));
        }
        Ok(examined)
    }

    fn rotate(&mut self, _amount: u32) {}

    fn amov(&mut self, _src: u32, _dst: u32) {}

    fn reset(&mut self) {
        self.regs.iter_mut().for_each(|r| *r = None);
    }
}

/// Itanium-ALAT-style detection (paper §2.3): advanced loads allocate
/// entries; **every store checks every valid entry**, which detects all the
/// aliases the optimizer cares about but also raises *false positives*
/// (a store that genuinely overlaps an entry it never needed to check), and
/// it cannot detect store-store aliases at all. The entry file grows on
/// demand (an idealized, capacity-unconstrained ALAT — generous to the
/// comparison baseline; see EXPERIMENTS.md).
#[derive(Clone, Debug, Default)]
pub struct AlatHw {
    entries: Vec<Option<(MemRange, u32)>>,
}

impl AlatHw {
    /// Creates an empty ALAT.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, entry: u32) {
        if self.entries.len() <= entry as usize {
            self.entries.resize(entry as usize + 1, None);
        }
    }
}

impl AliasHardware for AlatHw {
    fn mem_access(
        &mut self,
        annot: AliasAnnot,
        range: MemRange,
        is_load: bool,
        tag: u32,
    ) -> Result<u32, AliasViolation> {
        let mut examined = 0;
        if !is_load {
            // Stores implicitly check ALL valid entries.
            for (r, producer) in self.entries.iter().flatten() {
                examined += 1;
                if r.overlaps(range) {
                    return Err(AliasViolation {
                        checker_tag: tag,
                        producer_tag: *producer,
                    });
                }
            }
        }
        match annot {
            AliasAnnot::AlatSet { entry } => {
                self.ensure(entry);
                self.entries[entry as usize] = Some((range, tag));
            }
            AliasAnnot::None => {}
            other => debug_assert!(false, "ALAT received a foreign annotation: {other:?}"),
        }
        Ok(examined)
    }

    fn rotate(&mut self, _amount: u32) {}

    fn amov(&mut self, _src: u32, _dst: u32) {}

    fn alat_clear(&mut self, entry: u32) {
        self.ensure(entry);
        self.entries[entry as usize] = None;
    }

    fn reset(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
    }
}

/// A dispatching wrapper over the four hardware models, so runtimes can
/// pick the scheme at run time without generics.
#[derive(Clone, Debug)]
pub enum AnyAliasHw {
    /// SMARQ ordered queue.
    Smarq(SmarqQueueHw),
    /// Efficeon bit-mask file.
    Efficeon(EfficeonHw),
    /// Itanium-like ALAT.
    Alat(AlatHw),
    /// No hardware.
    None(NoAliasHw),
}

impl AnyAliasHw {
    /// Builds the hardware for `kind`. `num_regs` sizes the SMARQ queue or
    /// the Efficeon file; the ALAT grows on demand.
    pub fn for_kind(kind: HwKind, num_regs: u32) -> Self {
        match kind {
            HwKind::Smarq => AnyAliasHw::Smarq(SmarqQueueHw::new(num_regs.max(1))),
            HwKind::Efficeon => {
                AnyAliasHw::Efficeon(EfficeonHw::new(num_regs.min(EfficeonHw::MAX_REGS)))
            }
            HwKind::Alat => AnyAliasHw::Alat(AlatHw::new()),
            HwKind::None => AnyAliasHw::None(NoAliasHw),
        }
    }
}

impl AliasHardware for AnyAliasHw {
    fn mem_access(
        &mut self,
        annot: AliasAnnot,
        range: MemRange,
        is_load: bool,
        tag: u32,
    ) -> Result<u32, AliasViolation> {
        match self {
            AnyAliasHw::Smarq(h) => h.mem_access(annot, range, is_load, tag),
            AnyAliasHw::Efficeon(h) => h.mem_access(annot, range, is_load, tag),
            AnyAliasHw::Alat(h) => h.mem_access(annot, range, is_load, tag),
            AnyAliasHw::None(h) => h.mem_access(annot, range, is_load, tag),
        }
    }

    fn rotate(&mut self, amount: u32) {
        match self {
            AnyAliasHw::Smarq(h) => h.rotate(amount),
            AnyAliasHw::Efficeon(h) => h.rotate(amount),
            AnyAliasHw::Alat(h) => h.rotate(amount),
            AnyAliasHw::None(h) => h.rotate(amount),
        }
    }

    fn amov(&mut self, src: u32, dst: u32) {
        match self {
            AnyAliasHw::Smarq(h) => h.amov(src, dst),
            AnyAliasHw::Efficeon(h) => h.amov(src, dst),
            AnyAliasHw::Alat(h) => h.amov(src, dst),
            AnyAliasHw::None(h) => h.amov(src, dst),
        }
    }

    fn alat_clear(&mut self, entry: u32) {
        match self {
            AnyAliasHw::Smarq(h) => h.alat_clear(entry),
            AnyAliasHw::Efficeon(h) => h.alat_clear(entry),
            AnyAliasHw::Alat(h) => h.alat_clear(entry),
            AnyAliasHw::None(h) => h.alat_clear(entry),
        }
    }

    fn reset(&mut self) {
        match self {
            AnyAliasHw::Smarq(h) => h.reset(),
            AnyAliasHw::Efficeon(h) => h.reset(),
            AnyAliasHw::Alat(h) => h.reset(),
            AnyAliasHw::None(h) => h.reset(),
        }
    }
}

/// No alias-detection hardware: every access succeeds (the optimizer must
/// not speculate on memory at all when targeting this).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoAliasHw;

impl AliasHardware for NoAliasHw {
    fn mem_access(
        &mut self,
        annot: AliasAnnot,
        _range: MemRange,
        _is_load: bool,
        _tag: u32,
    ) -> Result<u32, AliasViolation> {
        debug_assert!(
            matches!(annot, AliasAnnot::None),
            "no-alias hardware cannot honor {annot:?}"
        );
        Ok(0)
    }

    fn rotate(&mut self, _amount: u32) {}

    fn amov(&mut self, _src: u32, _dst: u32) {}

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(addr: u64) -> MemRange {
        MemRange::word(addr)
    }

    #[test]
    fn smarq_hw_detects_ordered_aliases_only() {
        let mut hw = SmarqQueueHw::new(4);
        // Load sets offset 1; a later store checks from offset 0: conflict.
        hw.mem_access(
            AliasAnnot::Smarq {
                p: true,
                c: false,
                offset: 1,
            },
            rng(0x100),
            true,
            7,
        )
        .unwrap();
        let err = hw
            .mem_access(
                AliasAnnot::Smarq {
                    p: false,
                    c: true,
                    offset: 0,
                },
                rng(0x100),
                false,
                9,
            )
            .unwrap_err();
        assert_eq!(
            err,
            AliasViolation {
                checker_tag: 9,
                producer_tag: 7
            }
        );
        // A checker at offset 2 scans only later registers: no conflict.
        hw.mem_access(
            AliasAnnot::Smarq {
                p: false,
                c: true,
                offset: 2,
            },
            rng(0x100),
            false,
            10,
        )
        .unwrap();
    }

    #[test]
    fn smarq_hw_rotation_and_amov() {
        let mut hw = SmarqQueueHw::new(2);
        hw.mem_access(
            AliasAnnot::Smarq {
                p: true,
                c: false,
                offset: 0,
            },
            rng(0x100),
            true,
            1,
        )
        .unwrap();
        hw.amov(0, 1); // relocate
        hw.rotate(1); // release the (now empty) first register
                      // The moved entry is now at offset 0.
        let err = hw
            .mem_access(
                AliasAnnot::Smarq {
                    p: false,
                    c: true,
                    offset: 0,
                },
                rng(0x100),
                false,
                2,
            )
            .unwrap_err();
        assert_eq!(err.producer_tag, 1);
        hw.reset();
        hw.mem_access(
            AliasAnnot::Smarq {
                p: false,
                c: true,
                offset: 0,
            },
            rng(0x100),
            false,
            3,
        )
        .unwrap();
    }

    #[test]
    fn smarq_hw_load_load_filter() {
        let mut hw = SmarqQueueHw::new(2);
        hw.mem_access(
            AliasAnnot::Smarq {
                p: true,
                c: false,
                offset: 0,
            },
            rng(0x100),
            true,
            1,
        )
        .unwrap();
        // A load checker skips load-set entries.
        hw.mem_access(
            AliasAnnot::Smarq {
                p: false,
                c: true,
                offset: 0,
            },
            rng(0x100),
            true,
            2,
        )
        .unwrap();
    }

    #[test]
    fn efficeon_checks_only_the_mask() {
        let mut hw = EfficeonHw::new(4);
        hw.mem_access(
            AliasAnnot::Efficeon {
                set: Some(2),
                check_mask: 0,
            },
            rng(0x100),
            true,
            1,
        )
        .unwrap();
        // Mask excluding register 2: no exception even though ranges alias.
        hw.mem_access(
            AliasAnnot::Efficeon {
                set: None,
                check_mask: 0b0011,
            },
            rng(0x100),
            false,
            2,
        )
        .unwrap();
        // Mask including register 2: exception.
        let err = hw
            .mem_access(
                AliasAnnot::Efficeon {
                    set: None,
                    check_mask: 0b0100,
                },
                rng(0x100),
                false,
                3,
            )
            .unwrap_err();
        assert_eq!(err.producer_tag, 1);
    }

    #[test]
    #[should_panic(expected = "at most 15")]
    fn efficeon_cannot_scale_past_15() {
        EfficeonHw::new(16);
    }

    #[test]
    fn alat_store_checks_everything_including_false_positives() {
        let mut hw = AlatHw::new();
        hw.mem_access(AliasAnnot::AlatSet { entry: 0 }, rng(0x100), true, 1)
            .unwrap();
        // This store never needed to check op 1 (it was not reordered with
        // it), but ALAT has no way to express that: spurious exception.
        let err = hw
            .mem_access(AliasAnnot::None, rng(0x100), false, 2)
            .unwrap_err();
        assert_eq!(err.producer_tag, 1);
        // Clearing the entry at the load's home position stops the checks.
        let mut hw = AlatHw::new();
        hw.mem_access(AliasAnnot::AlatSet { entry: 0 }, rng(0x100), true, 1)
            .unwrap();
        hw.alat_clear(0);
        hw.mem_access(AliasAnnot::None, rng(0x100), false, 2)
            .unwrap();
    }

    #[test]
    fn alat_cannot_detect_store_store() {
        let mut hw = AlatHw::new();
        // Two aliasing stores — ALAT is silent (loads only).
        hw.mem_access(AliasAnnot::None, rng(0x100), false, 1)
            .unwrap();
        hw.mem_access(AliasAnnot::None, rng(0x100), false, 2)
            .unwrap();
    }

    #[test]
    fn no_alias_hw_never_faults() {
        let mut hw = NoAliasHw;
        hw.mem_access(AliasAnnot::None, rng(0x100), false, 1)
            .unwrap();
        hw.mem_access(AliasAnnot::None, rng(0x100), true, 2)
            .unwrap();
        hw.rotate(3);
        hw.amov(0, 1);
        hw.reset();
    }
}
