//! The target VLIW instruction set the dynamic optimizer emits.
//!
//! The machine has 64 integer and 64 floating-point registers. The dynamic
//! binary translator keeps guest architectural state in registers 0–31 of
//! each file and uses 32–63 as scratch (e.g. for renaming loads hoisted
//! above side exits). Instructions are grouped into [`Bundle`]s issued
//! in order, one bundle per cycle at best.

use smarq_guest::{AluOp, CmpOp, FpuOp};
use std::fmt;

/// A byte range `[lo, hi]` accessed by a memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemRange {
    /// First byte.
    pub lo: u64,
    /// Last byte (inclusive).
    pub hi: u64,
}

impl MemRange {
    /// The 8-byte range starting at `addr` (aligned down).
    pub fn word(addr: u64) -> Self {
        let lo = addr & !7;
        MemRange { lo, hi: lo + 7 }
    }

    /// Whether two ranges overlap.
    pub fn overlaps(self, other: MemRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Alias-detection annotation attached to a memory operation. Which
/// variants appear depends on the hardware model the optimizer targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AliasAnnot {
    /// No alias hardware interaction.
    None,
    /// SMARQ ordered-queue annotation: P/C bits plus a register offset
    /// (paper §3.1).
    Smarq {
        /// Set an alias register after the access.
        p: bool,
        /// Check alias registers (at offsets `>=` `offset`) before the
        /// access.
        c: bool,
        /// Register offset relative to the current `BASE`.
        offset: u32,
    },
    /// Efficeon-style annotation: optionally set one register by index and
    /// check an explicit bit-mask of registers (paper §2.2).
    Efficeon {
        /// Register index to set, if any.
        set: Option<u8>,
        /// Bit-mask of register indices to check.
        check_mask: u64,
    },
    /// Itanium-ALAT-style: this (advanced) load allocates ALAT entry
    /// `entry` (paper §2.3). Stores check **all** valid entries implicitly.
    AlatSet {
        /// Entry index.
        entry: u32,
    },
}

/// A conditional side exit out of the atomic region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CondExit {
    /// Predicate over two integer registers.
    pub op: CmpOp,
    /// First compared register.
    pub ra: u8,
    /// Second compared register.
    pub rb: u8,
}

/// One VLIW operation (slot content).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum VliwOp {
    /// No operation.
    Nop,
    /// `rd = value`.
    IConst {
        /// Destination (integer file).
        rd: u8,
        /// Immediate.
        value: i64,
    },
    /// `rd = ra <op> rb`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// First source.
        ra: u8,
        /// Second source.
        rb: u8,
    },
    /// `rd = ra <op> imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// Source.
        ra: u8,
        /// Immediate.
        imm: i64,
    },
    /// `rd = ra` (integer copy; used by load renaming and load elimination).
    Copy {
        /// Destination.
        rd: u8,
        /// Source.
        ra: u8,
    },
    /// `fd = value`.
    FConst {
        /// Destination (fp file).
        fd: u8,
        /// Immediate.
        value: f64,
    },
    /// `fd = fa <op> fb`.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination.
        fd: u8,
        /// First source.
        fa: u8,
        /// Second source.
        fb: u8,
    },
    /// `fd = fa` (fp copy).
    FCopy {
        /// Destination.
        fd: u8,
        /// Source.
        fa: u8,
    },
    /// `fd = (f64) ra`.
    ItoF {
        /// Destination.
        fd: u8,
        /// Source.
        ra: u8,
    },
    /// `rd = (i64) fa`.
    FtoI {
        /// Destination.
        rd: u8,
        /// Source.
        fa: u8,
    },
    /// Integer load `rd = mem[base + disp]`.
    Load {
        /// Destination.
        rd: u8,
        /// Base register.
        base: u8,
        /// Displacement.
        disp: i64,
        /// Alias-detection annotation.
        alias: AliasAnnot,
        /// Region-local memory-op tag for exception reporting.
        tag: u32,
    },
    /// Integer store `mem[base + disp] = rs`.
    Store {
        /// Source.
        rs: u8,
        /// Base register.
        base: u8,
        /// Displacement.
        disp: i64,
        /// Alias-detection annotation.
        alias: AliasAnnot,
        /// Region-local memory-op tag.
        tag: u32,
    },
    /// FP load `fd = mem[base + disp]`.
    FLoad {
        /// Destination.
        fd: u8,
        /// Base register.
        base: u8,
        /// Displacement.
        disp: i64,
        /// Alias-detection annotation.
        alias: AliasAnnot,
        /// Region-local memory-op tag.
        tag: u32,
    },
    /// FP store `mem[base + disp] = fs`.
    FStore {
        /// Source.
        fs: u8,
        /// Base register.
        base: u8,
        /// Displacement.
        disp: i64,
        /// Alias-detection annotation.
        alias: AliasAnnot,
        /// Region-local memory-op tag.
        tag: u32,
    },
    /// Invalidate ALAT entry `entry` (the hoisted load's home position has
    /// been passed: its aliases no longer matter). Analogous to Itanium's
    /// `chk.a` releasing the entry.
    AlatClear {
        /// Entry index.
        entry: u32,
    },
    /// Rotate the alias register queue by `amount` (paper §3.2).
    Rotate {
        /// Rotation amount.
        amount: u32,
    },
    /// Move alias register contents `src -> dst`, clearing `src`
    /// (paper §3.3). `src == dst` is the clean-up form.
    Amov {
        /// Source offset.
        src: u32,
        /// Destination offset.
        dst: u32,
    },
    /// Leave the region through exit `exit_id`; unconditional when `cond`
    /// is `None`, otherwise only when the condition holds.
    Exit {
        /// Exit index into [`VliwProgram::exits`].
        exit_id: u32,
        /// Optional predicate.
        cond: Option<CondExit>,
    },
}

impl VliwOp {
    /// The functional-unit class this op occupies.
    pub fn slot_class(&self) -> SlotClass {
        match self {
            VliwOp::Load { .. }
            | VliwOp::Store { .. }
            | VliwOp::FLoad { .. }
            | VliwOp::FStore { .. } => SlotClass::Mem,
            VliwOp::Fpu { .. } | VliwOp::FCopy { .. } | VliwOp::FConst { .. } => SlotClass::Fpu,
            VliwOp::Exit { .. } => SlotClass::Branch,
            _ => SlotClass::Alu,
        }
    }

    /// `true` for loads and stores.
    pub fn is_mem(&self) -> bool {
        self.slot_class() == SlotClass::Mem
    }
}

/// Functional-unit classes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SlotClass {
    /// Integer/branch-prep/copy/rotate/amov slot.
    Alu,
    /// Memory slot.
    Mem,
    /// Floating-point slot.
    Fpu,
    /// Branch/exit slot.
    Branch,
}

impl fmt::Display for SlotClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SlotClass::Alu => "alu",
            SlotClass::Mem => "mem",
            SlotClass::Fpu => "fpu",
            SlotClass::Branch => "br",
        };
        f.write_str(s)
    }
}

/// A VLIW bundle: operations issued together in one cycle.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Bundle {
    /// Slot contents.
    pub ops: Vec<VliwOp>,
}

/// Where a region exit transfers control.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExitTarget {
    /// The guest block to continue at; `None` means program halt.
    pub guest_block: Option<u32>,
}

/// A translated, optimized atomic region.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct VliwProgram {
    /// Bundles in issue order.
    pub bundles: Vec<Bundle>,
    /// Exit table; `Exit { exit_id }` indexes here.
    pub exits: Vec<ExitTarget>,
}

impl VliwProgram {
    /// Total operation count (excluding NOPs).
    pub fn op_count(&self) -> usize {
        self.bundles
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|op| !matches!(op, VliwOp::Nop))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_range_word_and_overlap() {
        let a = MemRange::word(0x103);
        assert_eq!((a.lo, a.hi), (0x100, 0x107));
        let b = MemRange::word(0x108);
        assert!(!a.overlaps(b));
        assert!(a.overlaps(MemRange::word(0x100)));
        assert!(a.overlaps(MemRange {
            lo: 0x107,
            hi: 0x110
        }));
    }

    #[test]
    fn slot_classes() {
        let ld = VliwOp::Load {
            rd: 1,
            base: 2,
            disp: 0,
            alias: AliasAnnot::None,
            tag: 0,
        };
        assert_eq!(ld.slot_class(), SlotClass::Mem);
        assert!(ld.is_mem());
        assert_eq!(
            VliwOp::Fpu {
                op: smarq_guest::FpuOp::Add,
                fd: 1,
                fa: 2,
                fb: 3
            }
            .slot_class(),
            SlotClass::Fpu
        );
        assert_eq!(
            VliwOp::Exit {
                exit_id: 0,
                cond: None
            }
            .slot_class(),
            SlotClass::Branch
        );
        assert_eq!(VliwOp::Rotate { amount: 1 }.slot_class(), SlotClass::Alu);
        assert_eq!(VliwOp::Nop.slot_class(), SlotClass::Alu);
    }

    #[test]
    fn op_count_skips_nops() {
        let p = VliwProgram {
            bundles: vec![Bundle {
                ops: vec![VliwOp::Nop, VliwOp::Rotate { amount: 1 }],
            }],
            exits: vec![],
        };
        assert_eq!(p.op_count(), 1);
    }
}
