//! Human-readable rendering of translated VLIW regions.
//!
//! ```
//! use smarq_vliw::{Bundle, VliwOp, VliwProgram, ExitTarget, AliasAnnot};
//! let p = VliwProgram {
//!     bundles: vec![Bundle {
//!         ops: vec![
//!             VliwOp::IConst { rd: 1, value: 7 },
//!             VliwOp::Load {
//!                 rd: 2, base: 1, disp: 8,
//!                 alias: AliasAnnot::Smarq { p: true, c: false, offset: 0 },
//!                 tag: 3,
//!             },
//!         ],
//!     }],
//!     exits: vec![ExitTarget { guest_block: None }],
//! };
//! let text = p.to_string();
//! assert!(text.contains("ld r2, [r1+8]"));
//! assert!(text.contains("P@0"));
//! ```

use crate::isa::{AliasAnnot, Bundle, CondExit, VliwOp, VliwProgram};
use smarq_guest::{AluOp, CmpOp, FpuOp};
use std::fmt;

fn alu(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Slt => "slt",
    }
}

fn fpu(op: FpuOp) -> &'static str {
    match op {
        FpuOp::Add => "fadd",
        FpuOp::Sub => "fsub",
        FpuOp::Mul => "fmul",
        FpuOp::Div => "fdiv",
        FpuOp::Min => "fmin",
        FpuOp::Max => "fmax",
    }
}

fn cmp(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Ge => "ge",
    }
}

impl fmt::Display for AliasAnnot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AliasAnnot::None => Ok(()),
            AliasAnnot::Smarq { p, c, offset } => {
                let bits = match (p, c) {
                    (true, true) => "PC",
                    (true, false) => "P",
                    (false, true) => "C",
                    (false, false) => "-",
                };
                write!(f, "{bits}@{offset}")
            }
            AliasAnnot::Efficeon { set, check_mask } => {
                if let Some(r) = set {
                    write!(f, "set#{r}")?;
                    if check_mask != 0 {
                        write!(f, ",")?;
                    }
                }
                if check_mask != 0 {
                    write!(f, "chk{check_mask:#x}")?;
                }
                Ok(())
            }
            AliasAnnot::AlatSet { entry } => write!(f, "alat#{entry}"),
        }
    }
}

fn annot_suffix(a: &AliasAnnot) -> String {
    match a {
        AliasAnnot::None => String::new(),
        other => format!("  {{{other}}}"),
    }
}

impl fmt::Display for VliwOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VliwOp::Nop => write!(f, "nop"),
            VliwOp::IConst { rd, value } => write!(f, "iconst r{rd}, {value}"),
            VliwOp::Alu { op, rd, ra, rb } => {
                write!(f, "{} r{rd}, r{ra}, r{rb}", alu(op))
            }
            VliwOp::AluImm { op, rd, ra, imm } => {
                write!(f, "{}i r{rd}, r{ra}, {imm}", alu(op))
            }
            VliwOp::Copy { rd, ra } => write!(f, "mov r{rd}, r{ra}"),
            VliwOp::FConst { fd, value } => write!(f, "fconst f{fd}, {value}"),
            VliwOp::Fpu { op, fd, fa, fb } => {
                write!(f, "{} f{fd}, f{fa}, f{fb}", fpu(op))
            }
            VliwOp::FCopy { fd, fa } => write!(f, "fmov f{fd}, f{fa}"),
            VliwOp::ItoF { fd, ra } => write!(f, "itof f{fd}, r{ra}"),
            VliwOp::FtoI { rd, fa } => write!(f, "ftoi r{rd}, f{fa}"),
            VliwOp::Load {
                rd,
                base,
                disp,
                alias,
                ..
            } => write!(f, "ld r{rd}, [r{base}+{disp}]{}", annot_suffix(&alias)),
            VliwOp::Store {
                rs,
                base,
                disp,
                alias,
                ..
            } => write!(f, "st r{rs}, [r{base}+{disp}]{}", annot_suffix(&alias)),
            VliwOp::FLoad {
                fd,
                base,
                disp,
                alias,
                ..
            } => write!(f, "fld f{fd}, [r{base}+{disp}]{}", annot_suffix(&alias)),
            VliwOp::FStore {
                fs,
                base,
                disp,
                alias,
                ..
            } => write!(f, "fst f{fs}, [r{base}+{disp}]{}", annot_suffix(&alias)),
            VliwOp::AlatClear { entry } => write!(f, "alat.clear #{entry}"),
            VliwOp::Rotate { amount } => write!(f, "ar.rotate {amount}"),
            VliwOp::Amov { src, dst } => write!(f, "ar.amov {src}, {dst}"),
            VliwOp::Exit { exit_id, cond } => match cond {
                None => write!(f, "exit #{exit_id}"),
                Some(CondExit { op, ra, rb }) => {
                    write!(f, "exit.{} #{exit_id}, r{ra}, r{rb}", cmp(op))
                }
            },
        }
    }
}

impl fmt::Display for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for op in &self.ops {
            if !first {
                write!(f, " | ")?;
            }
            write!(f, "{op}")?;
            first = false;
        }
        if first {
            write!(f, "nop")?;
        }
        Ok(())
    }
}

impl fmt::Display for VliwProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.bundles.iter().enumerate() {
            writeln!(f, "{i:4}: {b}")?;
        }
        for (i, e) in self.exits.iter().enumerate() {
            match e.guest_block {
                Some(b) => writeln!(f, "exit #{i} -> guest block B{b}")?,
                None => writeln!(f, "exit #{i} -> halt")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ExitTarget;

    #[test]
    fn ops_render() {
        let cases: Vec<(VliwOp, &str)> = vec![
            (VliwOp::Nop, "nop"),
            (
                VliwOp::Alu {
                    op: AluOp::Mul,
                    rd: 1,
                    ra: 2,
                    rb: 3,
                },
                "mul r1, r2, r3",
            ),
            (VliwOp::Rotate { amount: 2 }, "ar.rotate 2"),
            (VliwOp::Amov { src: 1, dst: 0 }, "ar.amov 1, 0"),
            (VliwOp::AlatClear { entry: 7 }, "alat.clear #7"),
            (
                VliwOp::Exit {
                    exit_id: 1,
                    cond: Some(CondExit {
                        op: CmpOp::Ge,
                        ra: 1,
                        rb: 2,
                    }),
                },
                "exit.ge #1, r1, r2",
            ),
        ];
        for (op, want) in cases {
            assert_eq!(op.to_string(), want);
        }
    }

    #[test]
    fn annotations_render() {
        assert_eq!(
            AliasAnnot::Smarq {
                p: true,
                c: true,
                offset: 3
            }
            .to_string(),
            "PC@3"
        );
        assert_eq!(
            AliasAnnot::Efficeon {
                set: Some(2),
                check_mask: 0b101
            }
            .to_string(),
            "set#2,chk0x5"
        );
        assert_eq!(AliasAnnot::AlatSet { entry: 4 }.to_string(), "alat#4");
        assert_eq!(AliasAnnot::None.to_string(), "");
    }

    #[test]
    fn program_render_includes_exits() {
        let p = VliwProgram {
            bundles: vec![Bundle {
                ops: vec![
                    VliwOp::IConst { rd: 1, value: 1 },
                    VliwOp::Exit {
                        exit_id: 0,
                        cond: None,
                    },
                ],
            }],
            exits: vec![ExitTarget {
                guest_block: Some(4),
            }],
        };
        let text = p.to_string();
        assert!(text.contains("iconst r1, 1 | exit #0"));
        assert!(text.contains("exit #0 -> guest block B4"));
    }

    #[test]
    fn empty_bundle_renders_nop() {
        assert_eq!(Bundle::default().to_string(), "nop");
    }
}
