; dot product with a pointer-ambiguous accumulator writeback.
; x and y are seeded with data directives; acc starts at zero.
.double 0x1000, 1.25
.double 0x1008, -0.5
.double 0x9000, 0.5
.double 0x9008, 4.0
entry:
    iconst r1, 0          ; i
    iconst r2, 5000       ; n
    iconst r3, 0x1000     ; x
    iconst r4, 0x9000     ; y
    iconst r5, 0x20000    ; acc pointer
    jump body
body:
    fld f3, [r3+0]
    fld f4, [r4+0]
    fmul f5, f3, f4
    fld f6, [r5+0]        ; accumulator load behind the stores below
    fadd f6, f6, f5
    fst f6, [r5+0]
    fld f3, [r3+8]
    fld f4, [r4+8]
    fmul f5, f3, f4
    fadd f6, f6, f5
    fst f6, [r5+8]
    addi r1, r1, 1
    blt r1, r2, body, done
done:
    halt
