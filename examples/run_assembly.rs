//! Write a guest program in assembly text, run it through the full dynamic
//! optimization system, and dump the translated VLIW region.
//!
//! Run with: `cargo run --example run_assembly`

use smarq_guest::{parse_program, Interpreter};
use smarq_ir::{form_superblock, FormationParams};
use smarq_opt::{optimize_superblock, AliasBlacklist, OptConfig};
use smarq_runtime::{DynOptSystem, SystemConfig};
use smarq_vliw::MachineConfig;

const PROGRAM: &str = r"
; dot-product-like kernel: the load of y[i] sits behind the store to
; out[i-1] (different pointers the runtime cannot disambiguate).
entry:
    iconst r1, 0          ; i
    iconst r2, 4000       ; n
    iconst r3, 0x1000     ; x
    iconst r4, 0x9000     ; y
    iconst r5, 0x20000    ; out
    fconst f1, 1.5
    fconst f2, 0.25
    jump body
body:
    fdiv f3, f1, f2       ; long-latency producer
    fst f3, [r5+0]        ; store through out
    fld f4, [r4+0]        ; load through y  (may-alias to the analysis)
    fmul f5, f4, f2
    fst f5, [r3+8]
    addi r1, r1, 1
    blt r1, r2, body, done
done:
    halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(PROGRAM)?;
    println!("guest program:\n{}", smarq_guest::disassemble(&program));

    // Show the translated region the optimizer would produce.
    let mut interp = Interpreter::new();
    interp.run(&program, 50_000);
    let sb = form_superblock(
        &program,
        interp.profile(),
        smarq_guest::BlockId(1),
        FormationParams::default(),
    );
    let opt = optimize_superblock(
        &sb,
        &OptConfig::smarq(64),
        &MachineConfig::default(),
        &AliasBlacklist::new(),
    );
    println!("translated region (SMARQ annotations in braces):");
    print!("{}", opt.vliw);
    println!(
        "checks={} antis={} working set={}\n",
        opt.stats.checks, opt.stats.antis, opt.stats.working_set
    );

    // And execute end to end.
    let mut sys = DynOptSystem::new(program.clone(), SystemConfig::default());
    sys.run_to_completion(u64::MAX);
    let mut reference = Interpreter::new();
    reference.run(&program, u64::MAX);
    assert_eq!(sys.interp().arch_state(), reference.arch_state());
    println!(
        "executed: {} cycles in {} region entries (bit-exact vs interpretation)",
        sys.stats().total_cycles(),
        sys.stats().region_entries
    );
    Ok(())
}
