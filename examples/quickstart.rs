//! Quickstart: allocate alias registers for a hand-written region.
//!
//! Reproduces the paper's Figure 2/6 example end to end: a superblock's
//! memory operations are described, loads are speculatively hoisted above
//! may-aliasing stores, and SMARQ assigns P/C bits and queue offsets so
//! the hardware detects exactly the required aliases.
//!
//! Run with: `cargo run --example quickstart`

use smarq::validate::validate_allocation;
use smarq::{allocate, AliasCode, DepGraph, MemKind, RegionSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 2 original program:
    //   M0: st [r0+4]   M1: ld [r1]   M2: st [r0]   M3: ld [r2]
    // The simple alias analysis proves M0/M2 disjoint (same base register)
    // but cannot disambiguate the other cross-base pairs.
    let mut region = RegionSpec::new();
    let m0 = region.push(MemKind::Store, 0);
    let m1 = region.push(MemKind::Load, 1);
    let m2 = region.push(MemKind::Store, 2);
    let m3 = region.push(MemKind::Load, 3);
    region.set_may_alias(m0, m1, true);
    region.set_may_alias(m1, m2, true);
    region.set_may_alias(m3, m0, true);
    region.set_may_alias(m3, m2, true);

    // The optimizer hoists both loads and sinks M0 (Figure 2(b)):
    let schedule = vec![m3, m1, m2, m0];

    let deps = DepGraph::compute(&region);
    let alloc = allocate(&region, &deps, &schedule, 64)?;

    println!("Optimized schedule with SMARQ annotations:");
    for code in alloc.code() {
        match code {
            AliasCode::Op {
                id,
                p_bit,
                c_bit,
                offset,
            } => {
                let kind = region.op(*id).kind;
                let bits = match (p_bit, c_bit) {
                    (true, true) => "PC",
                    (true, false) => "P ",
                    (false, true) => " C",
                    (false, false) => "  ",
                };
                match offset {
                    Some(o) => println!("  {id}: {kind}   [{bits}]  offset {o}"),
                    None => println!("  {id}: {kind}   [{bits}]"),
                }
            }
            AliasCode::Amov(a) => {
                println!("  AMOV {} -> {}", a.src_offset, a.dst_offset)
            }
            AliasCode::Rotate(r) => println!("  ROTATE {}", r.amount),
        }
    }
    println!(
        "working set: {} alias register(s); {} check-, {} anti-constraints",
        alloc.working_set(),
        alloc.stats().checks,
        alloc.stats().antis
    );

    // Prove the allocation sound (every required check performed) and
    // precise (no possible false positive).
    validate_allocation(&region, &deps, &schedule, &alloc)?;
    println!("validated: sound and free of false positives");
    Ok(())
}
