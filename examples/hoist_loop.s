; Hand-written guest kernel: a counted accumulation loop with a store to
; a provably disjoint address ahead of the load — the canonical SMARQ
; hoisting opportunity. The dynamic optimizer speculates the load above
; the store under alias-register protection; `smarq lint examples/`
; statically verifies the translations this program produces, and
; `smarq lint examples/ --nospec 0x1000..0x1008` proves the same program
; with speculation on the load's address range suppressed.
b0:
    iconst r1, 0
    iconst r2, 400
    iconst r3, 4096
    iconst r5, 8192
    jump b1
b1:
    st r1, [r5+0]
    ld r4, [r3+0]
    add r4, r4, r1
    st r4, [r3+0]
    addi r1, r1, 1
    blt r1, r2, b1, b2
b2:
    halt
