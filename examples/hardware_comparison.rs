//! Compares the four alias-detection hardware schemes (paper Table 1 and
//! Figure 15) on one workload: run the same guest kernel under each scheme
//! and report cycles, rollbacks and speedups.
//!
//! Run with: `cargo run --release --example hardware_comparison [workload]`

use smarq_opt::OptConfig;
use smarq_runtime::{DynOptSystem, SystemConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ammp".into());
    let Some(w) = smarq_workloads::by_name(&name) else {
        eprintln!(
            "unknown workload '{name}'; available: {}",
            smarq_workloads::WORKLOAD_NAMES.join(", ")
        );
        std::process::exit(2);
    };
    println!("workload: {} — {}", w.name, w.description);

    let configs: [(&str, OptConfig); 6] = [
        ("no alias hardware", OptConfig::no_alias_hw()),
        ("SMARQ (64 regs)", OptConfig::smarq(64)),
        ("SMARQ (16 regs)", OptConfig::smarq(16)),
        ("Efficeon (15 regs)", OptConfig::efficeon()),
        ("Itanium-like ALAT", OptConfig::alat()),
        (
            "SMARQ, no st-reorder",
            OptConfig::smarq_no_store_reorder(64),
        ),
    ];

    let mut baseline = None;
    for (label, opt) in configs {
        let mut sys = DynOptSystem::new(w.program.clone(), SystemConfig::with_opt(opt));
        sys.run_to_completion(u64::MAX);
        let s = sys.stats();
        let cycles = s.total_cycles();
        let base = *baseline.get_or_insert(cycles);
        let ws = s
            .per_region
            .iter()
            .map(|r| r.opt.working_set)
            .max()
            .unwrap_or(0);
        println!(
            "{label:22} {cycles:>10} cycles  speedup {:>5.3}  rollbacks {:>2}  alias-reg working set {ws}",
            base as f64 / cycles as f64,
            s.rollbacks,
        );
    }
}
