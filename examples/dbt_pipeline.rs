//! The full dynamic binary optimization pipeline (paper Figure 1) on a
//! guest program with a *truly aliasing* pointer pair: the first region
//! execution raises an alias exception, rolls back, blacklists the pair,
//! re-optimizes conservatively, and then runs cleanly.
//!
//! Run with: `cargo run --example dbt_pipeline`

use smarq_guest::{AluOp, CmpOp, Interpreter, ProgramBuilder, Reg};
use smarq_opt::OptConfig;
use smarq_runtime::{DynOptSystem, SystemConfig};

fn main() {
    // A loop that writes through r3 and reads through r5 — two registers
    // the runtime cannot disambiguate, holding the SAME address.
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), 2_000);
    b.iconst(entry, Reg(3), 0x1000);
    b.iconst(entry, Reg(5), 0x1000); // same address, different register
    b.jump(entry, body);
    b.st(body, Reg(1), Reg(3), 0);
    b.ld(body, Reg(4), Reg(5), 0); // must observe the store
    b.alu(body, AluOp::Add, Reg(6), Reg(6), Reg(4));
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    let program = b.finish(entry);

    // Reference run: pure interpretation.
    let mut reference = Interpreter::new();
    reference.run(&program, u64::MAX);

    // Dynamic optimization with SMARQ.
    let mut sys = DynOptSystem::new(program, SystemConfig::with_opt(OptConfig::smarq(64)));
    sys.run_to_completion(u64::MAX);

    let stats = sys.stats();
    println!("regions formed:        {}", stats.regions_formed);
    println!("region entries:        {}", stats.region_entries);
    println!("alias exceptions:      {}", stats.rollbacks);
    println!("re-translations:       {}", stats.retranslations);
    println!("blacklisted pairs:     {}", sys.blacklist().len());
    println!("simulated cycles:      {}", stats.total_cycles());
    println!(
        "optimization overhead: {:.4}%",
        stats.optimization_overhead() * 100.0
    );

    assert!(stats.rollbacks >= 1, "the aliasing pair must fault once");
    assert_eq!(
        sys.interp().arch_state(),
        reference.arch_state(),
        "optimized execution must match pure interpretation bit for bit"
    );
    println!("architectural state matches pure interpretation");
}
