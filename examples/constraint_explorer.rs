//! Explores the constraint analysis on the paper's elimination examples
//! (Figures 5, 8, 9 and 12): extended dependences, anti-constraints, the
//! constraint-graph cycle, and the AMOV that breaks it.
//!
//! Run with: `cargo run --example constraint_explorer`

use smarq::validate::validate_allocation;
use smarq::{allocate, AliasCode, ConstraintGraph, DepGraph, DepKind, MemKind, RegionSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: speculative load elimination (Figures 5 and 8) ---
    // M1 ld [r1]; M2 ld [r0+4]; M3 st [r0]; M4 st [r1]; M5 ld [r0+4].
    // M5 is eliminated by forwarding from M2.
    println!("== load elimination (paper Figures 5/8) ==");
    let mut r = RegionSpec::new();
    let m1 = r.push(MemKind::Load, 1);
    let m2 = r.push(MemKind::Load, 2);
    let m3 = r.push(MemKind::Store, 3);
    let m4 = r.push(MemKind::Store, 4);
    let m5 = r.push(MemKind::Load, 2);
    r.set_may_alias(m3, m2, true);
    r.set_may_alias(m3, m5, true);
    r.set_may_alias(m4, m1, true);
    r.add_load_elim(m2, m5);

    let deps = DepGraph::compute(&r);
    for d in deps.iter() {
        let kind = match d.kind {
            DepKind::Plain => "dep",
            DepKind::ExtendedLoadElim => "extended dep (load elim)",
            DepKind::ExtendedStoreElim => "extended dep (store elim)",
        };
        println!("  {} ->{kind} {}", d.src, d.dst);
    }

    // Schedule in original order (minus the eliminated load): the extended
    // dependence still forces M3 to check M2 even though nothing moved.
    let schedule = vec![m1, m2, m3, m4];
    let graph = ConstraintGraph::derive(&r, &deps, &schedule);
    println!("  constraints:");
    for c in graph.iter() {
        let k = match c.kind {
            smarq::ConstraintKind::Check => "check",
            smarq::ConstraintKind::Anti => "anti ",
        };
        println!("    {} ->{k} {}", c.src, c.dst);
    }
    let alloc = allocate(&r, &deps, &schedule, 64)?;
    validate_allocation(&r, &deps, &schedule, &alloc)?;
    println!(
        "  allocation validated; working set = {}\n",
        alloc.working_set()
    );

    // --- Part 2: a constraint cycle broken by AMOV (Figures 9/12) ---
    println!("== constraint cycle and AMOV (paper Figures 9/12) ==");
    let mut r = RegionSpec::new();
    let c1 = r.push(MemKind::Store, 0); // forwards to z1
    let s = r.push(MemKind::Store, 1); // checker of the hoisted x
    let x = r.push(MemKind::Load, 2); // hoisted; forwards to z2
    let v = r.push(MemKind::Store, 3); // hoisted above x
    let z2 = r.push(MemKind::Load, 2); // eliminated
    let y = r.push(MemKind::Store, 4); // checker of c1 via extended dep
    let z1 = r.push(MemKind::Load, 0); // eliminated
    r.set_may_alias(c1, x, true);
    r.set_may_alias(s, x, true);
    r.set_may_alias(x, v, true);
    r.set_may_alias(v, z2, true);
    r.set_may_alias(y, c1, true);
    r.set_may_alias(y, z1, true);
    r.set_may_alias(x, y, true);
    r.set_may_alias(s, z2, false);
    r.set_may_alias(c1, z2, false);
    r.set_may_alias(y, z2, false);
    r.add_load_elim(x, z2);
    r.add_load_elim(c1, z1);

    let deps = DepGraph::compute(&r);
    let schedule = vec![c1, v, x, s, y];
    let alloc = allocate(&r, &deps, &schedule, 64)?;
    println!("  emitted alias code:");
    for code in alloc.code() {
        match code {
            AliasCode::Op {
                id,
                p_bit,
                c_bit,
                offset,
            } => println!(
                "    {id}: P={} C={} offset={:?}",
                *p_bit as u8, *c_bit as u8, offset
            ),
            AliasCode::Amov(a) => println!(
                "    AMOV {} -> {} ({})",
                a.src_offset,
                a.dst_offset,
                if a.is_move { "relocation" } else { "clean-up" }
            ),
            AliasCode::Rotate(rot) => println!("    ROTATE {}", rot.amount),
        }
    }
    println!(
        "  AMOVs: {} total ({} relocations)",
        alloc.stats().amovs,
        alloc.stats().amov_moves
    );
    validate_allocation(&r, &deps, &schedule, &alloc)?;
    println!("  allocation validated: cycle broken without false positives");
    Ok(())
}
