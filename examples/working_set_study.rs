//! Working-set study on one workload's hot region (the paper's §6.2 and
//! Figure 17, as a standalone experiment): compares SMARQ's constraint-
//! order allocation against the straightforward program-order baselines
//! and the live-range lower bound, and shows the constraint graph.
//!
//! Run with: `cargo run --release --example working_set_study [workload]`

use smarq::baseline::{program_order_allocate, BaselineOptions, BaselineScope};
use smarq::{allocate, live_range_lower_bound, ConstraintGraph, DepGraph};
use smarq_guest::Interpreter;
use smarq_ir::{build_region_spec, form_superblock, AliasAnalysis, FormationParams};
use smarq_opt::{dag, elim, sched, AliasBlacklist, OptConfig};
use smarq_vliw::MachineConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mgrid".into());
    let Some(w) = smarq_workloads::by_name(&name) else {
        eprintln!(
            "unknown workload '{name}'; available: {}",
            smarq_workloads::WORKLOAD_NAMES.join(", ")
        );
        std::process::exit(2);
    };
    println!("workload: {} — {}", w.name, w.description);

    // Profile, form the hot region, and reproduce the optimizer's schedule.
    let mut interp = Interpreter::new();
    interp.run(&w.program, 1_000_000);
    let sb = form_superblock(
        &w.program,
        interp.profile(),
        smarq_guest::BlockId(1),
        FormationParams::default(),
    );
    let config = OptConfig::smarq(64);
    let machine = MachineConfig::default();
    let analysis = AliasAnalysis::new(&sb);
    let (mut spec, map) = build_region_spec(&sb, &analysis);
    let no_taint = vec![false; sb.ops.len()];
    let mut elims = elim::run_eliminations(
        &sb,
        &analysis,
        &mut spec,
        &map,
        &config,
        &AliasBlacklist::new(),
        &no_taint,
    );
    elim::dce(&sb, &mut elims);
    let deps = DepGraph::compute(&spec);
    let work = dag::build_work_list(&sb, &elims);
    let graph = dag::build_dag(
        &sb,
        &analysis,
        &work,
        &config,
        &machine,
        &AliasBlacklist::new(),
        &no_taint,
    );
    let res = sched::schedule(&work, &graph, &config, &machine, &spec, &deps, &map)
        .expect("scheduling succeeds");
    let schedule: Vec<_> = res
        .linear
        .iter()
        .filter(|&&k| work.ops[k].is_mem())
        .filter_map(|&k| map.mem_id(work.orig[k]))
        .collect();

    println!(
        "hot region: {} memory operations ({} scheduled after eliminations)",
        map.len(),
        schedule.len()
    );

    // The four Figure 17 quantities.
    let smarq_alloc = allocate(&spec, &deps, &schedule, u32::MAX).unwrap();
    smarq::validate::validate_allocation(&spec, &deps, &schedule, &smarq_alloc).unwrap();
    let lb = live_range_lower_bound(&spec, &deps, &schedule);
    println!("\nalias register working sets:");
    println!("  program order, all ops     {}", schedule.len());
    match program_order_allocate(
        &spec,
        &deps,
        &schedule,
        u32::MAX,
        BaselineOptions {
            scope: BaselineScope::POnly,
            rotate: true,
        },
    ) {
        Ok(p_only) => println!("  program order, P ops only  {}", p_only.working_set()),
        Err(_) => println!(
            "  program order, P ops only  n/a (speculative eliminations present —\n\
             \x20                            exactly the case the paper says program-order\n\
             \x20                            allocation cannot handle)"
        ),
    }
    println!("  SMARQ (constraint order)   {}", smarq_alloc.working_set());
    println!("  live-range lower bound     {lb}");

    let s = smarq_alloc.stats();
    println!(
        "\nconstraints: {} check, {} anti; {} AMOVs; {} rotations",
        s.checks, s.antis, s.amovs, s.rotations
    );

    // Constraint graph for visual inspection.
    let cg = ConstraintGraph::derive(&spec, &deps, &schedule);
    println!("\nconstraint graph (Graphviz):\n{}", cg.to_dot(&spec));
}
